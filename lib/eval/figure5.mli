(** Reproduction of Figure 5: miss-rate distributions under profile
    perturbation.

    For each benchmark and each placement algorithm (PH, HKC, GBSC), the
    profile graphs are perturbed [runs] times with multiplicative
    log-normal noise (s = 0.1), a placement is computed from each perturbed
    profile using the {e training} trace's graphs, and the resulting layout
    is simulated on the {e testing} trace.  The sorted miss rates are the
    CDF the paper plots; the unperturbed miss rate is the "MR" the figure's
    inset table reports. *)

type algo = PH | HKC | GBSC

val algo_name : algo -> string

type result = {
  algo : algo;
  unperturbed : float;  (** miss rate without randomization *)
  sorted : float array;  (** perturbed-run miss rates, ascending *)
}

type bench_result = {
  bench : string;
  default_mr : float;
  results : result list;  (** PH, HKC, GBSC *)
}

val run : ?runs:int -> ?s:float -> ?seed:int -> Runner.t -> bench_result
(** Defaults: [runs] = 40 and [s] = 0.1, as in the paper. *)

val run_algo : ?runs:int -> ?s:float -> ?seed:int -> Runner.t -> algo -> result
(** One algorithm's share of {!run} — an independent work unit for the
    evaluation pool.  Every perturbation draws from an index- and
    algorithm-derived PRNG, so [run_algo] results equal the
    corresponding slice of {!run}. *)

val default_miss_rate : Runner.t -> float
(** The default layout's miss rate on the testing trace (the figure's
    baseline row). *)

val of_results : Runner.t -> default_mr:float -> result list -> bench_result
(** Reassembles a {!bench_result} from independently computed parts. *)

val print : ?cdf:bool -> bench_result -> unit
(** Prints the summary table (unperturbed MR plus min/median/max of the
    perturbed population) and, when [cdf] is set (default true), the sorted
    miss-rate points of each algorithm's CDF. *)
