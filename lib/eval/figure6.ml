module Prng = Trg_util.Prng
module Stats = Trg_util.Stats
module Table = Trg_util.Table
module Config = Trg_cache.Config
module Node = Trg_place.Node
module Gbsc = Trg_place.Gbsc
module Cost = Trg_place.Cost
module Linearize = Trg_place.Linearize
module Metric = Trg_place.Metric
module Trg = Trg_profile.Trg

type point = { miss_rate : float; metric_trg : float; metric_wcg : float }

type result = {
  bench : string;
  points : point array;
  r_trg : float;
  r_wcg : float;
  rho_trg : float;
  rho_wcg : float;
}

let run_range ?(max_moved = 50) ?(seed = 4242) (r : Runner.t) ~lo ~hi =
  let program = Runner.program r in
  let config = r.Runner.config in
  let cache = config.Gbsc.cache in
  let n_sets = Config.n_sets cache in
  let chunks = r.Runner.prof.Gbsc.chunks in
  let trg = r.Runner.prof.Gbsc.place.Trg.graph in
  (* Base GBSC placement, as (proc, offset) pairs plus the filler split. *)
  let nodes =
    Gbsc.place_nodes config program ~select:r.Runner.prof.Gbsc.select.Trg.graph
      ~model:(Cost.Trg_chunks { chunks; trg })
  in
  let base_placed = List.concat_map Node.members nodes in
  let placed_arr = Array.of_list base_placed in
  let in_nodes = Hashtbl.create 64 in
  List.iter (fun (p, _) -> Hashtbl.replace in_nodes p ()) base_placed;
  let filler = ref [] in
  for p = Trg_program.Program.n_procs program - 1 downto 0 do
    if not (Hashtbl.mem in_nodes p) then filler := p :: !filler
  done;
  let filler = Array.of_list !filler in
  let make_point i =
    let placed = Array.copy placed_arr in
    (* The first point is the unmodified GBSC placement.  Each point owns
       an index-derived PRNG, so any [lo, hi) slice of the point set is
       computable independently — the pool shards the points and the
       concatenation equals the sequential run. *)
    if i > 0 then begin
      let rng = Prng.create (seed + (7919 * i)) in
      let moved = Prng.int rng (max_moved + 1) in
      for _ = 1 to moved do
        let j = Prng.int rng (Array.length placed) in
        let p, _ = placed.(j) in
        placed.(j) <- (p, Prng.int rng n_sets)
      done
    end;
    let layout =
      Linearize.layout program ~line_size:cache.Config.line_size ~n_sets
        ~placed:(Array.to_list placed) ~filler
    in
    {
      miss_rate = Runner.train_miss_rate r layout;
      metric_trg = Metric.trg_place program ~chunks ~trg ~cache layout;
      metric_wcg = Metric.wcg program ~wcg:r.Runner.wcg ~cache layout;
    }
  in
  Array.init (max 0 (hi - lo)) (fun k -> make_point (lo + k))

let of_points (r : Runner.t) points =
  let misses = Array.map (fun p -> p.miss_rate) points in
  let m_trg = Array.map (fun p -> p.metric_trg) points in
  let m_wcg = Array.map (fun p -> p.metric_wcg) points in
  {
    bench = r.Runner.shape.Trg_synth.Shape.name;
    points;
    r_trg = Stats.pearson misses m_trg;
    r_wcg = Stats.pearson misses m_wcg;
    rho_trg = Stats.spearman misses m_trg;
    rho_wcg = Stats.spearman misses m_wcg;
  }

let run ?(n = 80) ?max_moved ?seed (r : Runner.t) =
  of_points r (run_range ?max_moved ?seed r ~lo:0 ~hi:n)

let print ?(points = true) res =
  Table.section
    (Printf.sprintf "FIGURE 6 — conflict metric vs cache misses (%s)" res.bench);
  Table.print
    ~header:[ "metric"; "Pearson r"; "Spearman rho" ]
    [
      [ "TRG_place (GBSC)"; Table.fmt_float ~decimals:3 res.r_trg;
        Table.fmt_float ~decimals:3 res.rho_trg ];
      [ "WCG"; Table.fmt_float ~decimals:3 res.r_wcg;
        Table.fmt_float ~decimals:3 res.rho_wcg ];
    ];
  if points then begin
    print_newline ();
    let pts metric = Array.map (fun p -> (100. *. p.miss_rate, metric p)) res.points in
    print_string
      (Trg_util.Plot.scatter ~x_label:"miss rate (%)" ~y_label:"TRG_place metric"
         [ ("layouts", pts (fun p -> p.metric_trg)) ]);
    print_newline ();
    print_string
      (Trg_util.Plot.scatter ~x_label:"miss rate (%)" ~y_label:"WCG metric"
         [ ("layouts", pts (fun p -> p.metric_wcg)) ]);
    print_newline ();
    print_endline "points (miss rate %, TRG metric, WCG metric):";
    Array.iter
      (fun p ->
        Printf.printf "  %7.4f  %12.0f  %12.0f\n" (100. *. p.miss_rate) p.metric_trg
          p.metric_wcg)
      res.points
  end;
  print_newline ()
