(** Bit-exact replay verification of merge-decision journals.

    A journal ({!Trg_obs.Journal}) claims a complete provenance for one
    placement: the ordered merge decisions with their weights and margins,
    GBSC's chosen offsets with their conflict costs, and the final
    layout's digest.  This module closes the loop: {!record} captures a
    journal from a live placement, and {!verify} re-drives a loaded
    journal through the merge driver in forced-choice mode
    ({!Trg_place.Merge_driver.replay}) and checks every claim
    bit-identically — pairs, weights, runner-ups, offsets, offset costs,
    the summed decision weight and the layout CRC.

    Verification recomputes offsets and costs with the {e currently
    active} cost engine ({!Trg_place.Cost.engine}), not the recorded one,
    so replaying the same journal under [--cost-engine full] and
    [--cost-engine incr] is also a differential witness that the two
    engines agree decision-by-decision on real merge sequences. *)

val layout_for :
  ?decisions:Trg_obs.Journal.decision array ->
  algo:string ->
  Runner.t ->
  Trg_program.Layout.t
(** Run (or, with [decisions], replay) the named algorithm — ["gbsc"],
    ["ph"], ["hkc"] or ["gbsc-sa"] — on a prepared benchmark.
    @raise Failure on an unknown algorithm or a replay mismatch. *)

val prepare_for : Trg_obs.Journal.meta -> Runner.t
(** Prepare the benchmark a journal was recorded on, at its recorded
    cache operating point (the default cache when the journal is
    cache-independent, i.e. PH's all-zero triple).
    @raise Failure when the source benchmark is unknown. *)

val record : algo:string -> Runner.t -> Trg_obs.Journal.t * Trg_program.Layout.t
(** Arm the journal, run the live placement, and take the capture.
    Process-global journal state: never call inside pool workers.
    @raise Failure if the placement did not offer itself for recording. *)

type report = {
  r_journal : Trg_obs.Journal.t;  (** the journal under verification *)
  r_engine : string;  (** cost engine the replay actually used *)
  r_steps : int;  (** decisions re-driven before success or mismatch *)
  r_layout_crc : int option;  (** replayed layout digest; [None] on abort *)
  r_total_weight : float option;
  r_mismatches : string list;  (** empty iff every claim verified *)
}

val ok : report -> bool

val verify : Trg_obs.Journal.t -> report
(** Re-drive the journal's decision sequence and compare every recorded
    claim bit-exactly.  Never raises on a mismatch — structural
    divergence (wrong pair, weight, runner-up, premature exhaustion) is
    reported in [r_mismatches], as are offset, cost, step-count,
    total-weight and layout-CRC disagreements. *)

val report_json : report -> Trg_obs.Json.t
(** Schema ["trgplace-replay/1"]. *)
