module Prng = Trg_util.Prng
module Stats = Trg_util.Stats
module Table = Trg_util.Table
module Graph = Trg_profile.Graph
module Perturb = Trg_profile.Perturb
module Trg = Trg_profile.Trg
module Gbsc = Trg_place.Gbsc
module Hkc = Trg_place.Hkc
module Ph = Trg_place.Ph
module Popularity = Trg_profile.Popularity

type algo = PH | HKC | GBSC

let algo_name = function PH -> "PH" | HKC -> "HKC" | GBSC -> "GBSC"

type result = { algo : algo; unperturbed : float; sorted : float array }

type bench_result = { bench : string; default_mr : float; results : result list }

(* One placement from (possibly perturbed) profile graphs. *)
let layout_of (r : Runner.t) algo ~wcg ~select ~place =
  let program = Runner.program r in
  match algo with
  | PH -> Ph.place ~wcg program
  | HKC ->
    Hkc.place r.Runner.config program ~wcg
      ~popularity:r.Runner.prof.Gbsc.popularity
  | GBSC ->
    Gbsc.place_with r.Runner.config program ~select
      ~model:
        (Trg_place.Cost.Trg_chunks { chunks = r.Runner.prof.Gbsc.chunks; trg = place })

(* Each run perturbs from its own index-derived PRNG, so per-algorithm
   results are identical whether the algorithms are evaluated together
   ({!run}) or as independent work units ({!run_algo}). *)
let run_algo ?(runs = 40) ?(s = Perturb.default_s) ?(seed = 7_777) (r : Runner.t)
    algo =
  let base_wcg = r.Runner.wcg in
  let base_select = r.Runner.prof.Gbsc.select.Trg.graph in
  let base_place = r.Runner.prof.Gbsc.place.Trg.graph in
  let unperturbed =
    Runner.test_miss_rate r
      (layout_of r algo ~wcg:base_wcg ~select:base_select ~place:base_place)
  in
  let rates =
    Array.init runs (fun i ->
        let rng = Prng.create (seed + (1000 * i) + Hashtbl.hash (algo_name algo)) in
        let wcg = Perturb.graph rng ~s base_wcg in
        let select = Perturb.graph rng ~s base_select in
        let place = Perturb.graph rng ~s base_place in
        Runner.test_miss_rate r (layout_of r algo ~wcg ~select ~place))
  in
  Array.sort compare rates;
  { algo; unperturbed; sorted = rates }

let default_miss_rate (r : Runner.t) =
  Runner.test_miss_rate r (Runner.default_layout r)

let of_results (r : Runner.t) ~default_mr results =
  { bench = r.Runner.shape.Trg_synth.Shape.name; default_mr; results }

let run ?runs ?s ?seed (r : Runner.t) =
  of_results r ~default_mr:(default_miss_rate r)
    (List.map (run_algo ?runs ?s ?seed r) [ PH; HKC; GBSC ])

let print ?(cdf = true) b =
  Table.section (Printf.sprintf "FIGURE 5 — %s (miss rates on testing input)" b.bench);
  Printf.printf "default layout MR: %s\n\n" (Table.fmt_pct b.default_mr);
  let header = [ "algorithm"; "MR (no noise)"; "min"; "p25"; "median"; "p75"; "max" ] in
  let rows =
    List.map
      (fun res ->
        [
          algo_name res.algo;
          Table.fmt_pct res.unperturbed;
          Table.fmt_pct (Stats.percentile res.sorted 0.);
          Table.fmt_pct (Stats.percentile res.sorted 25.);
          Table.fmt_pct (Stats.percentile res.sorted 50.);
          Table.fmt_pct (Stats.percentile res.sorted 75.);
          Table.fmt_pct (Stats.percentile res.sorted 100.);
        ])
      b.results
  in
  Table.print ~header rows;
  if cdf then begin
    print_newline ();
    let series =
      List.map
        (fun res ->
          (algo_name res.algo, Array.map (fun mr -> 100. *. mr) res.sorted))
        b.results
    in
    print_string
      (Trg_util.Plot.cdf ~x_label:"miss rate (%), lower-left is better" series);
    print_newline ();
    List.iter
      (fun res ->
        Printf.printf "%-5s sorted points:" (algo_name res.algo);
        Array.iteri
          (fun i mr ->
            if i mod 8 = 0 then Printf.printf "\n  ";
            Printf.printf "%6.3f%%" (100. *. mr))
          res.sorted;
        print_newline ())
      b.results
  end;
  print_newline ()
