(** Layout effects through full cache hierarchies (the conclusion's
    "other layers of the memory hierarchy"), head to head across named
    CPU models.

    For each selected {!Trg_cache.Cpu} preset — the paper's Alpha 21064,
    its 21164 successor, and Nehalem/Skylake-style machines whose caches
    replace by Tree-PLRU and QLRU rather than true LRU — the experiment
    simulates the default layout, PH, HKC and GBSC through the preset's
    L1/L2(/L3) hierarchy and reports per-level miss counts and local miss
    rates plus the cycle model's estimated cycles and AMAT.  The question
    it answers: does GBSC's advantage over PH/HKC survive modern
    replacement policies and deep hierarchies, or was it an artifact of
    the 1997 direct-mapped machine?

    Deterministic and jobs-invariant: every row is computed inside one
    pool work unit whose captured output is replayed in declaration
    order. *)

type row = {
  label : string;  (** layout name *)
  levels : (int * float) list;  (** per level: misses, local miss rate *)
  cycles : int;
  amat : float;
}

type cpu_result = {
  cpu : Trg_cache.Cpu.t;
  level_labels : string list;
  rows : row list;
}

type result = { bench : string; cpus : cpu_result list }

val run : ?cpus:string list -> Runner.t -> result
(** [cpus] (default {!Trg_cache.Cpu.default_selection}) names the presets
    to simulate, in report order.
    @raise Failure on an unknown preset name. *)

val print : result -> unit
