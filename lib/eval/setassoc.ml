module Config = Trg_cache.Config
module Table = Trg_util.Table
module Gbsc = Trg_place.Gbsc
module Gbsc_sa = Trg_place.Gbsc_sa

module Perturb = Trg_profile.Perturb
module Pair_db = Trg_profile.Pair_db
module Prng = Trg_util.Prng

type row = { label : string; miss_rate : float }

type section = { cache : Config.t; rows : row list }

type result = {
  bench : string;
  two_way : section;
  four_way : section;
  sa_perturbed : float * float;
      (** min/max GBSC-SA miss rate over perturbed pair databases
          (Figure 5's methodology applied to the Section 6 algorithm) *)
}

let section_for ?force_fail ?policy ~max_between ~assoc shape =
  let cache = Config.make ~size:8192 ~line_size:32 ~assoc in
  let config = Gbsc.default_config ~cache () in
  let r = Runner.prepare ~config ?policy ?force_fail shape in
  let program = Runner.program r in
  (* The direct-mapped-targeted baseline: GBSC as if the cache were DM. *)
  let config_dm =
    Gbsc.default_config ~cache:(Config.make ~size:8192 ~line_size:32 ~assoc:1) ()
  in
  let prof_dm = Gbsc.profile config_dm program r.Runner.train in
  let gbsc_dm = Gbsc.place program prof_dm in
  let sa =
    if assoc = 2 then
      (* The paper's pair database. *)
      Gbsc_sa.place program (Gbsc_sa.profile ~max_between config program r.Runner.train)
    else
      Gbsc_sa.place_tuples program
        (Gbsc_sa.profile_tuples config program r.Runner.train)
  in
  let mr = Runner.test_miss_rate r in
  {
    cache;
    rows =
      [
        { label = "default layout"; miss_rate = mr (Runner.default_layout r) };
        { label = "PH"; miss_rate = mr (Runner.ph_layout r) };
        { label = "GBSC (direct-mapped cost model)"; miss_rate = mr gbsc_dm };
        {
          label =
            (if assoc = 2 then "GBSC-SA (pair database)"
             else "GBSC-SA (tuple database)");
          miss_rate = mr sa;
        };
      ];
  }

let run_section = section_for

(* Each perturbation run draws from an index-derived PRNG, and min/max
   combine associatively, so any [lo, hi) slice is an independent work
   unit for the evaluation pool. *)
let run_perturbation ?force_fail ?policy ?(max_between = 32) ~lo ~hi shape =
  let cache = Config.make ~size:8192 ~line_size:32 ~assoc:2 in
  let config = Gbsc.default_config ~cache () in
  let r = Runner.prepare ~config ?policy ?force_fail shape in
  let program = Runner.program r in
  let prof = Gbsc_sa.profile ~max_between config program r.Runner.train in
  let rates =
    Array.init (max 1 (hi - lo)) (fun k ->
        let rng = Prng.create (31_000 + lo + k) in
        let db = Perturb.pair_db rng ~s:Perturb.default_s prof.Gbsc_sa.pairs.Pair_db.db in
        let select =
          Perturb.graph rng ~s:Perturb.default_s prof.Gbsc_sa.select.Trg_profile.Trg.graph
        in
        let layout =
          Gbsc.place_with config program ~select
            ~model:(Trg_place.Cost.Sa_pairs { chunks = prof.Gbsc_sa.chunks; db })
        in
        Runner.test_miss_rate r layout)
  in
  let lo = Array.fold_left Float.min rates.(0) rates in
  let hi = Array.fold_left Float.max rates.(0) rates in
  (lo, hi)

let of_parts shape ~two_way ~four_way ~sa_perturbed =
  { bench = shape.Trg_synth.Shape.name; two_way; four_way; sa_perturbed }

let run ?force_fail ?policy ?(max_between = 32) ?(runs = 8) shape =
  of_parts shape
    ~two_way:(section_for ?force_fail ?policy ~max_between ~assoc:2 shape)
    ~four_way:(section_for ?force_fail ?policy ~max_between ~assoc:4 shape)
    ~sa_perturbed:
      (run_perturbation ?force_fail ?policy ~max_between ~lo:0 ~hi:runs shape)

let print_section bench (s : section) =
  Table.section
    (Format.asprintf "SECTION 6 — %d-way set-associative cache (%s, %a)"
       s.cache.Config.assoc bench Config.pp s.cache);
  Table.print
    ~header:[ "layout"; "miss rate" ]
    (List.map (fun r -> [ r.label; Table.fmt_pct r.miss_rate ]) s.rows);
  print_newline ()

let print res =
  print_section res.bench res.two_way;
  print_section res.bench res.four_way;
  let lo, hi = res.sa_perturbed in
  Printf.printf
    "GBSC-SA under perturbed pair databases (s = 0.1): %.2f%% - %.2f%%\n\n"
    (100. *. lo) (100. *. hi)
