module Shape = Trg_synth.Shape
module Bench = Trg_synth.Bench
module Span = Trg_obs.Span

type options = {
  runs : int;
  fig6_points : int;
  benches : Shape.t list;
  print_cdf : bool;
  print_points : bool;
  keep_going : bool;
  force_fail : string list;
  jobs : int;
  timeout : float option;
  retries : int;
  policy : Trg_cache.Policy.kind;
  cpus : string list;
}

type failure = { experiment : string; bench : string option; message : string }

let default_options =
  {
    runs = 40;
    fig6_points = 80;
    benches = Bench.all;
    print_cdf = true;
    print_points = true;
    keep_going = false;
    force_fail = [];
    jobs = 0;
    timeout = None;
    retries = 0;
    policy = Trg_cache.Policy.Lru;
    cpus = Trg_cache.Cpu.default_selection;
  }

let quick_options =
  {
    runs = 8;
    fig6_points = 20;
    benches = [ Bench.find "small" ];
    print_cdf = false;
    print_points = false;
    keep_going = false;
    force_fail = [];
    jobs = 0;
    timeout = None;
    retries = 0;
    policy = Trg_cache.Policy.Lru;
    cpus = Trg_cache.Cpu.default_selection;
  }

let message_of = function Failure m -> m | e -> Printexc.to_string e

let pick options preferred =
  let by_name name = List.find_opt (fun s -> s.Shape.name = name) options.benches in
  match by_name preferred with
  | Some s -> s
  | None -> (
    match options.benches with
    | s :: _ -> s
    | [] -> invalid_arg "Report: no benchmarks selected")

(* --- execution model -------------------------------------------------- *)

(* One run's state: the options plus the prepared-benchmark table filled
   by the preparation phase.  A fresh context per top-level call replaces
   the old module-global cache, so concurrent or repeated runs cannot
   leak prepared state (or fault-injection settings) into each other. *)
type ctx = {
  options : options;
  prepared : (string, Runner.t) Hashtbl.t;
  prep_errors : (string, string) Hashtbl.t;
}

(* Everything a work unit can produce, as one closed variant so a single
   monomorphic pool shards units from heterogeneous experiments. *)
type payload =
  | P_unit
  | P_table1 of Table1.row
  | P_charact of Charact.row
  | P_padding of Padding.result
  | P_fig5_default of float
  | P_fig5 of Figure5.result
  | P_fig6 of Figure6.point array
  | P_sweep of Sweep.row
  | P_section of Setassoc.section
  | P_range of (float * float)

type exec_unit = {
  u_bench : string option;
  u_tag : string;
  u_weight : int;  (* relative cost estimate; heavy units dispatch first *)
  u_work : unit -> payload;
}

(* A built experiment is an ordered list of runnable units and skips
   (benchmarks whose preparation already failed). *)
type item = Run of exec_unit | Skip of string option * string

type spec = {
  sp_name : string;
  sp_needs : options -> Shape.t list;  (* benchmarks to prepare up front *)
  sp_build : ctx -> item list;
  sp_render : ctx -> (string option * string * payload) list -> unit;
}

let unit_ ?bench ?(weight = 1) ~tag work =
  Run { u_bench = bench; u_tag = tag; u_weight = weight; u_work = work }

let with_prepared ctx name k =
  match Hashtbl.find_opt ctx.prepared name with
  | Some r -> k r
  | None ->
    let message =
      match Hashtbl.find_opt ctx.prep_errors name with
      | Some m -> m
      | None -> name ^ ": benchmark was not prepared"
    in
    [ Skip (Some name, message) ]

(* --- experiment specifications ---------------------------------------- *)

let per_bench_spec ~name ?(weight = 1) ~tag ~work render =
  {
    sp_name = name;
    sp_needs = (fun o -> o.benches);
    sp_build =
      (fun ctx ->
        List.concat_map
          (fun s ->
            let b = s.Shape.name in
            with_prepared ctx b (fun r ->
                [ unit_ ~bench:b ~weight ~tag (fun () -> work ctx r) ]))
          ctx.options.benches);
    sp_render = render;
  }

(* Experiments that print inside their unit: the captured output is the
   whole result, replayed by the glue in benchmark order. *)
let print_spec ~name ?(weight = 1) work =
  per_bench_spec ~name ~weight ~tag:name
    ~work:(fun _ r ->
      work r;
      P_unit)
    (fun _ _ -> ())

(* Experiments that run on one chosen benchmark. *)
let single_spec ~name ~prefer ?(weight = 1) work =
  {
    sp_name = name;
    sp_needs = (fun o -> [ pick o prefer ]);
    sp_build =
      (fun ctx ->
        let shape = pick ctx.options prefer in
        let b = shape.Shape.name in
        with_prepared ctx b (fun r ->
            [
              unit_ ~bench:b ~weight ~tag:name (fun () ->
                  work r;
                  P_unit);
            ]));
    sp_render = (fun _ _ -> ());
  }

let spec_table1 =
  per_bench_spec ~name:"table1" ~tag:"row"
    ~work:(fun _ r -> P_table1 (Table1.row_of r))
    (fun _ s ->
      Table1.print
        (List.filter_map (function _, _, P_table1 row -> Some row | _ -> None) s))

let spec_characterize =
  per_bench_spec ~name:"characterize" ~tag:"row"
    ~work:(fun _ r -> P_charact (Charact.row_of r))
    (fun _ s ->
      Charact.print
        (List.filter_map (function _, _, P_charact row -> Some row | _ -> None) s))

let spec_figure5 =
  {
    sp_name = "figure5";
    sp_needs = (fun o -> o.benches);
    sp_build =
      (fun ctx ->
        let runs = ctx.options.runs in
        List.concat_map
          (fun s ->
            let b = s.Shape.name in
            with_prepared ctx b (fun r ->
                unit_ ~bench:b ~tag:"default" (fun () ->
                    P_fig5_default (Figure5.default_miss_rate r))
                :: List.map
                     (fun algo ->
                       unit_ ~bench:b ~weight:3 ~tag:(Figure5.algo_name algo)
                         (fun () -> P_fig5 (Figure5.run_algo ~runs r algo)))
                     [ Figure5.PH; Figure5.HKC; Figure5.GBSC ]))
          ctx.options.benches);
    sp_render =
      (fun ctx s ->
        List.iter
          (fun shape ->
            let b = shape.Shape.name in
            match Hashtbl.find_opt ctx.prepared b with
            | None -> ()
            | Some r ->
              let mine = List.filter (fun (bench, _, _) -> bench = Some b) s in
              let default_mr =
                List.find_map
                  (function _, _, P_fig5_default d -> Some d | _ -> None)
                  mine
              in
              let algos =
                List.filter_map
                  (function _, _, P_fig5 res -> Some res | _ -> None)
                  mine
              in
              (* Print only complete benchmarks; a missing part already
                 surfaced as a unit failure. *)
              (match default_mr with
              | Some default_mr when List.length algos = 3 ->
                Figure5.print ~cdf:ctx.options.print_cdf
                  (Figure5.of_results r ~default_mr algos)
              | _ -> ()))
          ctx.options.benches);
  }

let fig6_chunk = 10

let spec_figure6 =
  {
    sp_name = "figure6";
    sp_needs = (fun o -> [ pick o "go" ]);
    sp_build =
      (fun ctx ->
        let o = ctx.options in
        let shape = pick o "go" in
        let b = shape.Shape.name in
        with_prepared ctx b (fun r ->
            let n = o.fig6_points in
            let rec units lo =
              if lo >= n then []
              else begin
                let hi = min n (lo + fig6_chunk) in
                unit_ ~bench:b ~weight:3
                  ~tag:(Printf.sprintf "points %d-%d" lo (hi - 1))
                  (fun () -> P_fig6 (Figure6.run_range r ~lo ~hi))
                :: units hi
              end
            in
            units 0));
    sp_render =
      (fun ctx s ->
        let o = ctx.options in
        let shape = pick o "go" in
        match Hashtbl.find_opt ctx.prepared shape.Shape.name with
        | None -> ()
        | Some r ->
          let chunks =
            List.filter_map (function _, _, P_fig6 pts -> Some pts | _ -> None) s
          in
          let points = Array.concat chunks in
          if Array.length points = o.fig6_points then
            Figure6.print ~points:o.print_points (Figure6.of_points r points));
  }

let spec_padding =
  per_bench_spec ~name:"padding" ~tag:"padding"
    ~work:(fun _ r -> P_padding (Padding.run r))
    (fun _ s ->
      Padding.print_many
        (List.filter_map (function _, _, P_padding p -> Some p | _ -> None) s))

(* Set-associativity is by far the heaviest experiment (its pair and
   tuple databases are quadratic in Q), so it splits into the two cache
   sections plus perturbation slices; the pool runs them concurrently. *)
let sa_max_between = 32

let sa_runs = 8

let sa_chunk = 4

let spec_setassoc =
  {
    sp_name = "setassoc";
    sp_needs = (fun _ -> []);
    sp_build =
      (fun ctx ->
        let shape = Bench.find "small" in
        let b = shape.Shape.name in
        let force_fail = ctx.options.force_fail in
        let policy = ctx.options.policy in
        let section assoc tag =
          unit_ ~bench:b ~weight:40 ~tag (fun () ->
              P_section
                (Setassoc.run_section ~force_fail ~policy
                   ~max_between:sa_max_between ~assoc shape))
        in
        let rec perturbs lo =
          if lo >= sa_runs then []
          else begin
            let hi = min sa_runs (lo + sa_chunk) in
            unit_ ~bench:b ~weight:30 ~tag:(Printf.sprintf "perturb %d-%d" lo (hi - 1))
              (fun () ->
                P_range
                  (Setassoc.run_perturbation ~force_fail ~policy
                     ~max_between:sa_max_between ~lo ~hi shape))
            :: perturbs hi
          end
        in
        section 2 "2-way" :: section 4 "4-way" :: perturbs 0);
    sp_render =
      (fun _ s ->
        let shape = Bench.find "small" in
        let sections =
          List.filter_map
            (function _, tag, P_section sec -> Some (tag, sec) | _ -> None)
            s
        in
        let ranges =
          List.filter_map (function _, _, P_range r -> Some r | _ -> None) s
        in
        let n_perturb_units = (sa_runs + sa_chunk - 1) / sa_chunk in
        match (List.assoc_opt "2-way" sections, List.assoc_opt "4-way" sections) with
        | Some two_way, Some four_way when List.length ranges = n_perturb_units ->
          let sa_perturbed =
            List.fold_left
              (fun (lo, hi) (l, h) -> (Float.min lo l, Float.max hi h))
              (infinity, neg_infinity) ranges
          in
          Setassoc.print (Setassoc.of_parts shape ~two_way ~four_way ~sa_perturbed)
        | _ -> ());
  }

let spec_ablation =
  single_spec ~name:"ablation" ~prefer:"small" ~weight:3 (fun r ->
      Ablation.print (Ablation.run r))

let spec_splitting = print_spec ~name:"splitting" ~weight:2 (fun r -> Splitting.print (Splitting.run r))

let spec_paging = print_spec ~name:"paging" (fun r -> Paging.print (Paging.run r))

let spec_sampling =
  single_spec ~name:"sampling" ~prefer:"gcc" ~weight:2 (fun r ->
      Sampling.print (Sampling.run r))

let spec_blocks = print_spec ~name:"blocks" (fun r -> Blocks.print (Blocks.run r))

let spec_online =
  single_spec ~name:"online" ~prefer:"perl" (fun r -> Online.print (Online.run r))

(* The annealing headroom study is one long sequential chain; it cannot
   shard, but with weight 100 it dispatches first and overlaps everything
   else. *)
let spec_headroom =
  single_spec ~name:"headroom" ~prefer:"go" ~weight:100 (fun r ->
      Headroom.print (Headroom.run r))

let spec_hierarchy =
  per_bench_spec ~name:"hierarchy" ~weight:4 ~tag:"hierarchy"
    ~work:(fun ctx r ->
      Hierarchy.print (Hierarchy.run ~cpus:ctx.options.cpus r);
      P_unit)
    (fun _ _ -> ())

let spec_sweep =
  {
    sp_name = "sweep";
    sp_needs = (fun _ -> []);
    sp_build =
      (fun ctx ->
        let o = ctx.options in
        let shape = pick o "go" in
        let b = shape.Shape.name in
        let force_fail = o.force_fail in
        let policy = o.policy in
        List.map
          (fun size ->
            unit_ ~bench:b ~weight:5 ~tag:(Printf.sprintf "cache %dB" size)
              (fun () ->
                P_sweep (Sweep.run_size ~force_fail ~policy shape size)))
          Sweep.default_sizes);
    sp_render =
      (fun ctx s ->
        let shape = pick ctx.options "go" in
        let rows =
          List.filter_map (function _, _, P_sweep row -> Some row | _ -> None) s
        in
        if List.length rows = List.length Sweep.default_sizes then
          Sweep.print (Sweep.of_rows shape rows));
  }

(* --- glue: prepare, shard, replay ------------------------------------- *)

let pool_params options =
  ( (if options.jobs >= 1 then Some options.jobs else None),
    options.timeout,
    options.retries )

(* Runs a batch of experiments in two pool phases.

   Phase 1 prepares every benchmark any experiment needs, one work unit
   per benchmark; prepared runners are marshaled back to the parent and
   recorded in the context.  Phase 2 builds every experiment's unit list
   against the prepared table and shards the union through one shared
   pool, heaviest units first, so one slow experiment (annealing,
   set-associativity) overlaps the rest of the batch.

   Rendering then walks experiments in their declared order and units in
   their build order, replaying captured output — stdout is identical to
   the sequential run's, whatever the job count or completion order. *)
let run_specs options specs =
  let ctx =
    { options; prepared = Hashtbl.create 8; prep_errors = Hashtbl.create 8 }
  in
  let jobs, timeout, retries = pool_params options in
  let fail_fast = not options.keep_going in
  let needed =
    let seen = Hashtbl.create 8 in
    List.concat_map (fun sp -> sp.sp_needs options) specs
    |> List.filter (fun s ->
           if Hashtbl.mem seen s.Shape.name then false
           else begin
             Hashtbl.add seen s.Shape.name ();
             true
           end)
  in
  let force_fail = options.force_fail in
  let policy = options.policy in
  let prep_tasks =
    List.map
      (fun shape ->
        let name = shape.Shape.name in
        {
          Pool.key = "prepare " ^ name;
          work =
            (fun () ->
              Span.with_ name (fun () ->
                  Runner.prepare ~policy ~force_fail shape));
        })
      needed
  in
  let prep_outcomes = Pool.run ?jobs ?timeout ~retries ~fail_fast prep_tasks in
  List.iter2
    (fun shape (o : Runner.t Pool.outcome) ->
      print_string o.Pool.output;
      match o.Pool.value with
      | Ok r -> Hashtbl.replace ctx.prepared shape.Shape.name r
      | Error f ->
        Hashtbl.replace ctx.prep_errors shape.Shape.name (Pool.failure_to_string f))
    needed prep_outcomes;
  let built = List.map (fun sp -> (sp, sp.sp_build ctx)) specs in
  let units =
    List.concat_map
      (fun (sp, items) ->
        List.filter_map
          (function Run u -> Some (sp.sp_name, u) | Skip _ -> None)
          items)
      built
  in
  let n_units = List.length units in
  let indexed = List.mapi (fun i (en, u) -> (i, en, u)) units in
  (* Longest-processing-time dispatch order; results are re-indexed below
     so presentation never depends on it. *)
  let by_weight =
    List.stable_sort (fun (_, _, a) (_, _, b) -> compare b.u_weight a.u_weight) indexed
  in
  let tasks =
    List.map
      (fun (_, en, u) ->
        {
          Pool.key =
            (match u.u_bench with
            | Some b -> Printf.sprintf "%s [%s] %s" en b u.u_tag
            | None -> Printf.sprintf "%s %s" en u.u_tag);
          work =
            (fun () ->
              match u.u_bench with
              | Some b -> Span.with_ b u.u_work
              | None -> u.u_work ());
        })
      by_weight
  in
  let outcomes = Pool.run ?jobs ?timeout ~retries ~fail_fast tasks in
  let results : payload Pool.outcome option array = Array.make n_units None in
  List.iter2 (fun (i, _, _) o -> results.(i) <- Some o) by_weight outcomes;
  (* In strict mode a cancelled unit is never the root cause; point its
     abort message at the first real failure instead. *)
  let strict_abort_message =
    if options.keep_going then None
    else
      Array.fold_left
        (fun acc slot ->
          match (acc, slot) with
          | Some _, _ -> acc
          | None, Some { Pool.value = Error f; _ } when f <> Pool.Cancelled ->
            Some (Pool.failure_to_string f)
          | None, _ -> None)
        None results
  in
  let failures = ref [] in
  let cursor = ref 0 in
  List.iter
    (fun (sp, items) ->
      let experiment = sp.sp_name in
      let body () =
        let successes = ref [] in
        let strict_failure = ref None in
        let fail ?(cancelled = false) bench message =
          if options.keep_going then begin
            Printf.printf "!! %s%s FAILED: %s\n" experiment
              (match bench with Some b -> " [" ^ b ^ "]" | None -> "")
              message;
            failures := { experiment; bench; message } :: !failures
          end
          else if !strict_failure = None then
            strict_failure :=
              Some
                (if cancelled then
                   Option.value strict_abort_message ~default:message
                 else message)
        in
        List.iter
          (fun item ->
            match item with
            | Skip (bench, message) -> fail bench message
            | Run u ->
              let o =
                match results.(!cursor) with Some o -> o | None -> assert false
              in
              incr cursor;
              (match o.Pool.value with
              | Ok payload ->
                if !strict_failure = None then begin
                  print_string o.Pool.output;
                  successes := (u.u_bench, u.u_tag, payload) :: !successes
                end
              | Error f ->
                if !strict_failure = None then print_string o.Pool.output;
                fail
                  ~cancelled:(f = Pool.Cancelled)
                  u.u_bench (Pool.failure_to_string f)))
          items;
        match !strict_failure with
        | Some message -> failwith message
        | None -> sp.sp_render ctx (List.rev !successes)
      in
      match Span.with_ experiment body with
      | () -> ()
      | exception e when options.keep_going ->
        let message = message_of e in
        Printf.printf "!! %s FAILED: %s\n" experiment message;
        failures := { experiment; bench = None; message } :: !failures)
    built;
  List.rev !failures

let run_one options spec = run_specs options [ spec ]

let table1 options = run_one options spec_table1

let characterize options = run_one options spec_characterize

let figure5 options = run_one options spec_figure5

let figure6 options = run_one options spec_figure6

let padding options = run_one options spec_padding

let setassoc options = run_one options spec_setassoc

let ablation options = run_one options spec_ablation

let splitting options = run_one options spec_splitting

let paging options = run_one options spec_paging

let sampling options = run_one options spec_sampling

let blocks options = run_one options spec_blocks

let online options = run_one options spec_online

let headroom options = run_one options spec_headroom

let hierarchy options = run_one options spec_hierarchy

let sweep options = run_one options spec_sweep

let all options =
  run_specs options
    [
      spec_table1;
      spec_characterize;
      spec_figure5;
      spec_figure6;
      spec_padding;
      spec_setassoc;
      spec_ablation;
      spec_splitting;
      spec_paging;
      spec_sampling;
      spec_blocks;
      spec_online;
      spec_headroom;
      spec_hierarchy;
      spec_sweep;
    ]

let print_summary failures =
  match failures with
  | [] -> ()
  | _ ->
    Printf.printf "\n%d experiment step(s) failed:\n" (List.length failures);
    List.iter
      (fun { experiment; bench; message } ->
        Printf.printf "  %-12s %-8s %s\n" experiment
          (match bench with Some b -> b | None -> "-")
          message)
      failures
