module Shape = Trg_synth.Shape
module Bench = Trg_synth.Bench

type options = {
  runs : int;
  fig6_points : int;
  benches : Shape.t list;
  print_cdf : bool;
  print_points : bool;
  keep_going : bool;
  force_fail : string list;
}

type failure = { experiment : string; bench : string option; message : string }

let default_options =
  {
    runs = 40;
    fig6_points = 80;
    benches = Bench.all;
    print_cdf = true;
    print_points = true;
    keep_going = false;
    force_fail = [];
  }

let quick_options =
  {
    runs = 8;
    fig6_points = 20;
    benches = [ Bench.find "small" ];
    print_cdf = false;
    print_points = false;
    keep_going = false;
    force_fail = [];
  }

(* Prepared runners are cached per shape so [all] prepares each benchmark
   once across experiments. *)
let cache : (string, Runner.t) Hashtbl.t = Hashtbl.create 8

let reset_prepared () = Hashtbl.reset cache

let runner options shape =
  Runner.force_fail options.force_fail;
  let name = shape.Shape.name in
  match Hashtbl.find_opt cache name with
  | Some r -> r
  | None ->
    let r = Runner.prepare shape in
    Hashtbl.add cache name r;
    r

let message_of = function Failure m -> m | e -> Printexc.to_string e

(* Isolation boundary.  Strict mode (the default) re-raises, matching the
   pre-isolation behavior; with [keep_going] the failure is reported,
   recorded, and the rest of the batch proceeds.  Each guarded body is a
   telemetry span named after the benchmark (or the experiment for
   whole-experiment bodies), so manifests carry one span per
   (experiment, benchmark) with its outcome — including failures, which
   the span records before the isolation boundary sees them. *)
let guarded options ~experiment ?bench failures f =
  let span = match bench with Some b -> b | None -> experiment in
  match Trg_obs.Span.with_ span f with
  | v -> Some v
  | exception e when options.keep_going ->
    let message = message_of e in
    Printf.printf "!! %s%s FAILED: %s\n" experiment
      (match bench with Some b -> " [" ^ b ^ "]" | None -> "")
      message;
    failures := { experiment; bench; message } :: !failures;
    None

(* Run [f] on every selected benchmark, isolating failures per benchmark
   and keeping the successful results. *)
let per_bench options ~experiment f =
  let failures = ref [] in
  let results =
    List.filter_map
      (fun s ->
        guarded options ~experiment ~bench:s.Shape.name failures (fun () -> f s))
      options.benches
  in
  (results, List.rev !failures)

let per_bench_unit options ~experiment f =
  let _, failures = per_bench options ~experiment (fun s -> f s) in
  failures

(* Experiments that run on one chosen benchmark. *)
let single options ~experiment ~bench f =
  let failures = ref [] in
  ignore (guarded options ~experiment ~bench failures f);
  List.rev !failures

let pick options preferred =
  let by_name name = List.find_opt (fun s -> s.Shape.name = name) options.benches in
  match by_name preferred with
  | Some s -> s
  | None -> (
    match options.benches with
    | s :: _ -> s
    | [] -> invalid_arg "Report: no benchmarks selected")

let table1 options =
  let rows, failures =
    per_bench options ~experiment:"table1" (fun s -> Table1.row_of (runner options s))
  in
  Table1.print rows;
  failures

let characterize options =
  let rows, failures =
    per_bench options ~experiment:"characterize" (fun s ->
        Charact.row_of (runner options s))
  in
  Charact.print rows;
  failures

let figure5 options =
  per_bench_unit options ~experiment:"figure5" (fun s ->
      let result = Figure5.run ~runs:options.runs (runner options s) in
      Figure5.print ~cdf:options.print_cdf result)

let figure6 options =
  let shape = pick options "go" in
  single options ~experiment:"figure6" ~bench:shape.Shape.name (fun () ->
      Figure6.print ~points:options.print_points
        (Figure6.run ~n:options.fig6_points (runner options shape)))

let padding options =
  let results, failures =
    per_bench options ~experiment:"padding" (fun s -> Padding.run (runner options s))
  in
  Padding.print_many results;
  failures

let setassoc options =
  let shape = Bench.find "small" in
  single options ~experiment:"setassoc" ~bench:shape.Shape.name (fun () ->
      Setassoc.print (Setassoc.run shape))

let ablation options =
  let shape = pick options "small" in
  single options ~experiment:"ablation" ~bench:shape.Shape.name (fun () ->
      Ablation.print (Ablation.run (runner options shape)))

let splitting options =
  per_bench_unit options ~experiment:"splitting" (fun s ->
      Splitting.print (Splitting.run (runner options s)))

let paging options =
  per_bench_unit options ~experiment:"paging" (fun s ->
      Paging.print (Paging.run (runner options s)))

let sampling options =
  let shape = pick options "gcc" in
  single options ~experiment:"sampling" ~bench:shape.Shape.name (fun () ->
      Sampling.print (Sampling.run (runner options shape)))

let blocks options =
  per_bench_unit options ~experiment:"blocks" (fun s ->
      Blocks.print (Blocks.run (runner options s)))

let online options =
  let shape = pick options "perl" in
  single options ~experiment:"online" ~bench:shape.Shape.name (fun () ->
      Online.print (Online.run (runner options shape)))

let headroom options =
  let shape = pick options "go" in
  single options ~experiment:"headroom" ~bench:shape.Shape.name (fun () ->
      Headroom.print (Headroom.run (runner options shape)))

let hierarchy options =
  per_bench_unit options ~experiment:"hierarchy" (fun s ->
      Hierarchy.print (Hierarchy.run (runner options s)))

let sweep options =
  let shape = pick options "go" in
  single options ~experiment:"sweep" ~bench:shape.Shape.name (fun () ->
      Sweep.print (Sweep.run shape))

let all options =
  let experiments =
    [
      ("table1", table1);
      ("characterize", characterize);
      ("figure5", figure5);
      ("figure6", figure6);
      ("padding", padding);
      ("setassoc", setassoc);
      ("ablation", ablation);
      ("splitting", splitting);
      ("paging", paging);
      ("sampling", sampling);
      ("blocks", blocks);
      ("online", online);
      ("headroom", headroom);
      ("hierarchy", hierarchy);
      ("sweep", sweep);
    ]
  in
  List.concat_map
    (fun (experiment, f) ->
      (* A second boundary around the whole experiment catches failures
         outside any per-benchmark body (printing, aggregation). *)
      match Trg_obs.Span.with_ experiment (fun () -> f options) with
      | failures -> failures
      | exception e when options.keep_going ->
        let message = message_of e in
        Printf.printf "!! %s FAILED: %s\n" experiment message;
        [ { experiment; bench = None; message } ])
    experiments

let print_summary failures =
  match failures with
  | [] -> ()
  | _ ->
    Printf.printf "\n%d experiment step(s) failed:\n" (List.length failures);
    List.iter
      (fun { experiment; bench; message } ->
        Printf.printf "  %-12s %-8s %s\n" experiment
          (match bench with Some b -> b | None -> "-")
          message)
      failures
