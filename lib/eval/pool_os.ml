module Fault = Trg_util.Fault
module Clock = Trg_util.Clock

module type S = sig
  type os
  type fd
  type pid

  val spawn :
    os -> close_in_child:fd list -> (task_r:fd -> reply_w:fd -> unit) -> pid * fd * fd

  val kill : os -> pid -> unit

  val wait : os -> pid -> string

  val write : os -> fd -> string -> int -> int -> int

  val read : os -> fd -> bytes -> int -> int -> int

  val close : os -> fd -> unit

  val select : os -> fd list -> float -> fd list

  val now : os -> float

  val sleep : os -> float -> unit

  val isolated : os -> (unit -> 'a) -> 'a
end

module Real = struct
  type os = unit

  type fd = Unix.file_descr

  type pid = int

  let close () fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let spawn () ~close_in_child body =
    let task_r, task_w = Unix.pipe () in
    let reply_r, reply_w = Unix.pipe () in
    (* Anything buffered on the parent's channels would otherwise be
       flushed a second time from inside the child. *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      List.iter (close ()) close_in_child;
      close () task_w;
      close () reply_r;
      let code = match body ~task_r ~reply_w with () -> 0 | exception _ -> 1 in
      (* Skip the parent's at_exit machinery and inherited buffers. *)
      Unix._exit code
    | pid ->
      close () task_r;
      close () reply_w;
      (pid, task_w, reply_r)

  let kill () pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

  let wait () pid =
    let rec go () =
      try snd (Unix.waitpid [] pid)
      with Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    match try go () with Unix.Unix_error _ -> Unix.WEXITED 0 with
    | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
    | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
    | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

  let write () fd s pos len =
    try Unix.write_substring fd s pos len with
    | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    | Unix.Unix_error (e, _, _) ->
      Fault.fail
        (Fault.Io_error (Printf.sprintf "pool pipe write: %s" (Unix.error_message e)))

  let read () fd b pos len =
    let rec go () =
      try Unix.read fd b pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | Unix.Unix_error (e, _, _) ->
        Fault.fail
          (Fault.Io_error (Printf.sprintf "pool pipe read: %s" (Unix.error_message e)))
    in
    go ()

  let select () fds tmo =
    match Unix.select fds [] [] tmo with
    | readable, _, _ -> readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

  let now () = Clock.monotonic ()

  let sleep () d = Clock.sleep d

  let isolated () f = f ()
end
