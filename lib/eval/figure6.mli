(** Reproduction of Figure 6: correlation between conflict metrics and
    cache misses.

    Following the paper: start from the GBSC placement of the [go]
    benchmark, derive [n] layouts by randomly re-offsetting 0..50 of the
    placed procedures, and for each layout record (miss rate, TRG_place
    metric, WCG metric).  The TRG metric should sit close to a straight
    line through the points (strong Pearson r); the WCG metric should not. *)

type point = { miss_rate : float; metric_trg : float; metric_wcg : float }

type result = {
  bench : string;
  points : point array;
  r_trg : float;  (** Pearson correlation, TRG_place metric vs miss rate *)
  r_wcg : float;
  rho_trg : float;  (** Spearman rank correlations *)
  rho_wcg : float;
}

val run : ?n:int -> ?max_moved:int -> ?seed:int -> Runner.t -> result
(** Defaults: [n] = 80 layouts, [max_moved] = 50 procedures, as in the
    paper.  Miss rates are measured on the training trace, the input the
    metric is built from.  Point [i]'s perturbation draws from an
    index-derived PRNG, so equal to {!run_range} slices concatenated. *)

val run_range : ?max_moved:int -> ?seed:int -> Runner.t -> lo:int -> hi:int -> point array
(** Points [lo, hi) of the point set — an independent work unit for the
    evaluation pool.  Point 0 is always the unmodified GBSC placement. *)

val of_points : Runner.t -> point array -> result
(** Correlations over an assembled point set. *)

val print : ?points:bool -> result -> unit
