(** Reproduction of the Section 6 extension: placement for 2-way
    set-associative caches.

    Compares, on a 2-way LRU cache of the same total size: the default
    layout, PH, direct-mapped-targeted GBSC, and GBSC-SA (which replaces
    TRG_place with the pair database D(p, {r, s}) and charges conflicts per
    set).  The expected shape: associativity alone removes many conflicts,
    and GBSC-SA is the best of the placement algorithms on the associative
    cache. *)

type row = { label : string; miss_rate : float }

type section = { cache : Trg_cache.Config.t; rows : row list }

type result = {
  bench : string;
  two_way : section;  (** pair-database extension, as in the paper *)
  four_way : section;  (** tuple-database generalisation (arity 4) *)
  sa_perturbed : float * float;
      (** min/max GBSC-SA miss rate over perturbed pair databases *)
}

val run :
  ?force_fail:string list ->
  ?policy:Trg_cache.Policy.kind ->
  ?max_between:int ->
  ?runs:int ->
  Trg_synth.Shape.t ->
  result
(** Prepares the benchmark itself (it needs a 2-way configuration), so it
    takes a shape rather than a prepared runner.  [max_between] bounds the
    pair enumeration (default 32; see {!Trg_profile.Pair_db}).  [policy]
    selects the replacement policy the associative caches are scored
    under (default LRU, the paper's Section 6 assumption). *)

val run_section :
  ?force_fail:string list ->
  ?policy:Trg_cache.Policy.kind ->
  max_between:int ->
  assoc:int ->
  Trg_synth.Shape.t ->
  section
(** One associativity's comparison table — an independent work unit for
    the evaluation pool. *)

val run_perturbation :
  ?force_fail:string list ->
  ?policy:Trg_cache.Policy.kind ->
  ?max_between:int ->
  lo:int ->
  hi:int ->
  Trg_synth.Shape.t ->
  float * float
(** Min/max GBSC-SA miss rate over perturbation runs [lo, hi).  Each run
    draws from an index-derived PRNG and min/max combine associatively,
    so slices are independent pool work units whose combination equals
    the sequential run. *)

val of_parts :
  Trg_synth.Shape.t ->
  two_way:section ->
  four_way:section ->
  sa_perturbed:float * float ->
  result
(** Reassembles a {!result} from independently computed parts. *)

val print : result -> unit
