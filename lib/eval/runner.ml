module Shape = Trg_synth.Shape
module Gen = Trg_synth.Gen
module Trace = Trg_trace.Trace
module Layout = Trg_program.Layout
module Sim = Trg_cache.Sim
module Gbsc = Trg_place.Gbsc
module Ph = Trg_place.Ph
module Hkc = Trg_place.Hkc
module Wcg = Trg_profile.Wcg

type t = {
  shape : Shape.t;
  workload : Gen.workload;
  train : Trace.t;
  test : Trace.t;
  train_flat : Trace.Flat.t;
  test_flat : Trace.Flat.t;
  config : Gbsc.config;
  policy : Trg_cache.Policy.kind;
  prof : Gbsc.profile;
  wcg : Trg_profile.Graph.t;
}

(* Annotate failures with the benchmark and pipeline stage so a batch
   report can say more than "exception somewhere in prepare"; each stage
   is also a telemetry span, so manifests show where preparation time
   and allocation go per benchmark. *)
let stage shape name f =
  try Trg_obs.Span.with_ name f
  with e ->
    let msg = match e with Failure m -> m | e -> Printexc.to_string e in
    failwith (Printf.sprintf "%s: %s stage failed: %s" shape.Shape.name name msg)

let prepare ?config ?(policy = Trg_cache.Policy.Lru) ?(force_fail = []) shape =
  Trg_obs.Span.with_ ("prepare:" ^ shape.Shape.name) (fun () ->
      Trg_obs.Log.info (fun m -> m "preparing benchmark %s" shape.Shape.name);
      if List.mem shape.Shape.name force_fail then
        failwith
          (Printf.sprintf "%s: forced failure injected (--force-fail)"
             shape.Shape.name);
      let config = match config with Some c -> c | None -> Gbsc.default_config () in
      let workload = stage shape "generate" (fun () -> Gen.generate shape) in
      let train = stage shape "train-trace" (fun () -> Gen.train_trace workload) in
      let test = stage shape "test-trace" (fun () -> Gen.test_trace workload) in
      let prof =
        stage shape "profile" (fun () -> Gbsc.profile config workload.Gen.program train)
      in
      let wcg = stage shape "wcg" (fun () -> Wcg.build train) in
      let train_flat = Trace.Flat.of_trace train in
      let test_flat = Trace.Flat.of_trace test in
      Trg_cache.Policy.validate policy ~assoc:config.Gbsc.cache.Trg_cache.Config.assoc;
      {
        shape;
        workload;
        train;
        test;
        train_flat;
        test_flat;
        config;
        policy;
        prof;
        wcg;
      })

let program t = t.workload.Gen.program

let miss_rate_on t cache layout trace =
  Sim.miss_rate (Sim.simulate ~policy:t.policy (program t) layout cache trace)

(* The repeated-simulation surface: every experiment scores layouts on
   the same traces, so these stream the precomputed flat forms.  Counts
   are identical to [Sim.simulate] on the event-array traces. *)
let test_miss_rate t layout =
  Sim.miss_rate
    (Sim.simulate_flat ~policy:t.policy (program t) layout t.config.Gbsc.cache
       t.test_flat)

let train_miss_rate t layout =
  Sim.miss_rate
    (Sim.simulate_flat ~policy:t.policy (program t) layout t.config.Gbsc.cache
       t.train_flat)

let default_layout t = Layout.default (program t)

let gbsc_layout ?decisions t = Gbsc.place ?decisions (program t) t.prof

let ph_layout ?decisions t = Ph.place ?decisions ~wcg:t.wcg (program t)

let hkc_layout ?decisions t =
  Hkc.place ?decisions t.config (program t) ~wcg:t.wcg
    ~popularity:t.prof.Gbsc.popularity

let torrellas_layout t =
  Trg_place.Torrellas.place t.config (program t)
    ~popularity:t.prof.Gbsc.popularity

let hwu_chang_layout t = Trg_place.Hwu_chang.place ~wcg:t.wcg (program t)
