(** Cache-size sweep (Section 5.2: "We also experimented with smaller
    cache sizes and obtained similar results").

    Re-runs the three placement algorithms against a range of cache sizes
    (the Q bound, chunk filtering and placement geometry all follow the
    cache), measuring each layout on the testing input under its target
    cache.  The expected shape: the GBSC < HKC < PH < default ordering is
    stable across sizes, and everything converges as the cache grows past
    the popular working set. *)

type row = {
  cache_bytes : int;
  default_mr : float;
  torrellas_mr : float;
  ph_mr : float;
  hkc_mr : float;
  gbsc_mr : float;
}

type result = { bench : string; rows : row list }

val default_sizes : int list
(** 4 KB, 8 KB, 16 KB and 32 KB. *)

val run :
  ?force_fail:string list ->
  ?policy:Trg_cache.Policy.kind ->
  ?sizes:int list ->
  Trg_synth.Shape.t ->
  result
(** Default sizes: {!default_sizes}.  Prepares its own runners
    (one per cache size); [force_fail] is threaded to each
    {!Runner.prepare}. *)

val run_size :
  ?force_fail:string list ->
  ?policy:Trg_cache.Policy.kind ->
  Trg_synth.Shape.t ->
  int ->
  row
(** One cache size's row — an independent work unit for the evaluation
    pool. *)

val of_rows : Trg_synth.Shape.t -> row list -> result
(** Reassembles a {!result} from independently computed rows. *)

val print : result -> unit
