(** Serialisation of programs and layouts.

    Together with {!Trg_trace.Io} this lets the profiling, placement and
    simulation stages run as separate processes exchanging files — the way
    the paper's ATOM + placement-tool + linker pipeline operated.

    Program format: a [trgplace-program <version> <n>] header, then one
    [<id> <size> <name>] line per procedure.  Layout format: a
    [trgplace-layout <version> <n>] header, then one [<proc> <address>]
    line per procedure.

    {b Format v2} (the version written by this code) appends a
    [#crc <hex>] CRC-32 trailer covering every byte before it; v1 files
    (no trailer) still load.  Saves are atomic (write to [<path>.tmp],
    then rename).  Every loader exists as a [_result] form returning a
    typed {!Trg_util.Fault.error} and a compatibility form raising
    [Failure] with the rendered error. *)

val version : int
(** The format version written by the savers (2). *)

val write_program : out_channel -> Program.t -> unit

val read_program : in_channel -> Program.t
(** Raises [Failure] on malformed input. *)

val save_program : string -> Program.t -> unit

val save_program_result : string -> Program.t -> (unit, Trg_util.Fault.error) result

val load_program : string -> Program.t

val load_program_result : string -> (Program.t, Trg_util.Fault.error) result

val write_layout : out_channel -> Layout.t -> unit

val read_layout : Program.t -> in_channel -> Layout.t
(** Validates records (ids in range, no duplicates, non-negative
    addresses) and the layout against the program (procedure count,
    non-overlap).  Raises [Failure]. *)

val save_layout : string -> Layout.t -> unit

val save_layout_result : string -> Layout.t -> (unit, Trg_util.Fault.error) result

val load_layout : Program.t -> string -> Layout.t

val load_layout_result :
  Program.t -> string -> (Layout.t, Trg_util.Fault.error) result

val verify_layout_result : string -> (int, Trg_util.Fault.error) result
(** Structural integrity check of a layout file without a program to
    validate against: header, records, checksum.  Returns the procedure
    count.  Used by [trgplace verify]. *)
