type t = { addr : int array; span : int }

let round_up x align = if align <= 1 then x else (x + align - 1) / align * align

let validate program addr =
  let n = Array.length addr in
  if n <> Program.n_procs program then
    invalid_arg "Layout.of_addresses: address count does not match program";
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare addr.(a) addr.(b)) order;
  Array.iteri
    (fun i p ->
      if addr.(p) < 0 then
        invalid_arg (Printf.sprintf "Layout: negative address for proc %d" p);
      if i > 0 then begin
        let prev = order.(i - 1) in
        let prev_end = addr.(prev) + Program.size program prev in
        if addr.(p) < prev_end then
          invalid_arg
            (Printf.sprintf "Layout: procs %d and %d overlap (%d < %d)" prev p
               addr.(p) prev_end)
      end)
    order;
  match Array.length order with
  | 0 -> 0
  | n ->
    let last = order.(n - 1) in
    addr.(last) + Program.size program last

let of_addresses program addr =
  let addr = Array.copy addr in
  let span = validate program addr in
  { addr; span }

let address t p = t.addr.(p)

let addresses t = Array.copy t.addr

let n_procs t = Array.length t.addr

let span t = t.span

let order t =
  let ids = Array.init (Array.length t.addr) (fun i -> i) in
  Array.sort (fun a b -> compare t.addr.(a) t.addr.(b)) ids;
  ids

let gap_bytes t program =
  let used = Program.total_size program in
  t.span - used

let is_permutation n order =
  Array.length order = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun p ->
      if p < 0 || p >= n || seen.(p) then false
      else begin
        seen.(p) <- true;
        true
      end)
    order

let contiguous_with ?(align = 4) ~pad program order =
  let n = Program.n_procs program in
  if not (is_permutation n order) then
    invalid_arg "Layout.contiguous: order is not a permutation of proc ids";
  let addr = Array.make n 0 in
  let cursor = ref 0 in
  Array.iter
    (fun p ->
      cursor := round_up !cursor align;
      addr.(p) <- !cursor;
      cursor := !cursor + Program.size program p + pad)
    order;
  of_addresses program addr

let contiguous ?align program order = contiguous_with ?align ~pad:0 program order

let padded ?align ~pad program order =
  if pad < 0 then invalid_arg "Layout.padded: negative padding";
  contiguous_with ?align ~pad program order

let default ?align program =
  contiguous ?align program (Array.init (Program.n_procs program) (fun i -> i))

let random rng ?align program =
  let order = Array.init (Program.n_procs program) (fun i -> i) in
  Trg_util.Prng.shuffle rng order;
  contiguous ?align program order

let cache_line_of t ~line_size ~n_lines p = t.addr.(p) / line_size mod n_lines

let line_align ~line_size ~n_sets program t =
  if line_size <= 0 || n_sets <= 0 then
    invalid_arg "Layout.line_align: line_size and n_sets must be positive";
  let n = Array.length t.addr in
  let addr = Array.make n 0 in
  let cursor = ref 0 in
  Array.iter
    (fun p ->
      let set = t.addr.(p) / line_size mod n_sets in
      let cl = (!cursor + line_size - 1) / line_size in
      let k = ((set - cl) mod n_sets + n_sets) mod n_sets in
      addr.(p) <- (cl + k) * line_size;
      cursor := addr.(p) + Program.size program p)
    (order t);
  of_addresses program addr

(* Digest of the placement itself (proc -> address), independent of the
   rendering: the claim a decision journal makes about the layout its
   merge sequence produced, and what [trgplace replay] re-checks. *)
let digest t =
  let b = Buffer.create 256 in
  Array.iteri
    (fun p a ->
      Buffer.add_string b (string_of_int p);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int a);
      Buffer.add_char b '\n')
    t.addr;
  Trg_util.Checksum.string (Buffer.contents b)

let pp program ppf t =
  Array.iter
    (fun p ->
      Format.fprintf ppf "0x%06x  %-20s %6d bytes@." t.addr.(p)
        (Program.name program p) (Program.size program p))
    (order t)
