(** A layout: the starting byte address of every procedure.

    This is the object every placement algorithm produces and the cache
    simulator consumes.  The linker-level mechanisms the paper relies on —
    reordering procedures and inserting gaps — both reduce to choosing these
    addresses. *)

type t

val of_addresses : Program.t -> int array -> t
(** [of_addresses program addr] with [addr.(p)] the byte address of
    procedure [p].  Validates that no two procedures overlap and that all
    addresses are non-negative; raises [Invalid_argument] otherwise. *)

val address : t -> int -> int
(** Starting address of a procedure. *)

val addresses : t -> int array
(** Defensive copy of the address map. *)

val n_procs : t -> int

val span : t -> int
(** One past the largest occupied address: the total footprint of the
    layout, including any gaps. *)

val order : t -> int array
(** Procedure ids sorted by increasing address: the linear ordering this
    layout corresponds to in the executable. *)

val gap_bytes : t -> Program.t -> int
(** Total number of unoccupied bytes between address 0 and [span]. *)

val default : ?align:int -> Program.t -> t
(** Source-order layout: procedures appear in id order, each start rounded
    up to [align] bytes (default 4).  This is the "default layout produced
    by most compilers" baseline of the paper. *)

val contiguous : ?align:int -> Program.t -> int array -> t
(** [contiguous program order] packs the procedures in the given order with
    each start rounded up to [align] (default 4).  [order] must be a
    permutation of the procedure ids. *)

val padded : ?align:int -> pad:int -> Program.t -> int array -> t
(** Like {!contiguous} but inserts [pad] empty bytes after every procedure —
    the Section 5.1 fragility experiment. *)

val random : Trg_util.Prng.t -> ?align:int -> Program.t -> t
(** Uniformly random procedure order, packed contiguously. *)

val cache_line_of : t -> line_size:int -> n_lines:int -> int -> int
(** [cache_line_of t ~line_size ~n_lines p] is the direct-mapped cache line
    index of the first byte of procedure [p]:
    [(addr / line_size) mod n_lines]. *)

val line_align : line_size:int -> n_sets:int -> Program.t -> t -> t
(** Set-preserving line-aligned repack: procedures keep their address
    order, every start moves to the nearest available line boundary whose
    set index ([addr / line_size mod n_sets]) equals the set index of the
    procedure's original first line.  The cache conflict structure the
    layout encodes is untouched (line-to-set mapping per procedure is
    preserved), but no procedure straddles a partial first line, so
    distinct-line counts — and therefore compulsory misses — become
    comparable across layouts of the same program.  Used by the
    miss-attribution reports. *)

val digest : t -> int
(** CRC-32 of the placement's canonical [proc:address] rendering — two
    layouts share a digest iff they assign identical addresses.  Recorded
    as a decision journal's layout claim and re-checked bit-identical by
    [trgplace replay]. *)

val pp : Program.t -> Format.formatter -> t -> unit
(** One line per procedure in address order, for debugging/examples. *)
