module Fault = Trg_util.Fault
module Checksum = Trg_util.Checksum

let program_magic = "trgplace-program"

let layout_magic = "trgplace-layout"

let version = 2

(* --- serialisation --------------------------------------------------- *)

let with_trailer buf =
  let crc = Checksum.string (Buffer.contents buf) in
  Buffer.add_string buf (Fault.crc_trailer crc);
  Buffer.contents buf

let program_string program =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" program_magic version (Program.n_procs program));
  Program.iter
    (fun (p : Proc.t) ->
      Buffer.add_string buf (Printf.sprintf "%d %d %s\n" p.id p.size p.name))
    program;
  with_trailer buf

let layout_string layout =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" layout_magic version (Layout.n_procs layout));
  Array.iteri
    (fun p addr -> Buffer.add_string buf (Printf.sprintf "%d %d\n" p addr))
    (Layout.addresses layout);
  with_trailer buf

let write_program oc program = output_string oc (program_string program)

let write_layout oc layout = output_string oc (layout_string layout)

(* --- parsing --------------------------------------------------------- *)

let bad_record fmt = Printf.ksprintf (fun m -> Fault.fail (Fault.Bad_record m)) fmt

let read_program_reader r =
  let header = Fault.Reader.line r ~what:"program header" in
  let version, n =
    Fault.parse_header ~magic:program_magic ~max_version:version header
  in
  let procs = ref [] in
  for _ = 1 to n do
    let line = Fault.Reader.line r ~what:"program records" in
    let proc =
      try
        Scanf.sscanf line "%d %d %s@\n" (fun id size name ->
            Proc.make ~id ~name ~size)
      with
      | Scanf.Scan_failure _ | Failure _ | End_of_file | Invalid_argument _ ->
        bad_record "bad procedure line: %s" line
    in
    procs := proc :: !procs
  done;
  if version >= 2 then Fault.check_text_trailer r;
  try Program.make (Array.of_list (List.rev !procs))
  with Invalid_argument msg -> bad_record "invalid program: %s" msg

(* Structural layout parse: header + records + trailer, with ids checked
   against the record count.  Cross-validation against a program (count
   match, overlap) happens in [read_layout_reader] on top of this. *)
let read_layout_records r =
  let header = Fault.Reader.line r ~what:"layout header" in
  let version, n =
    Fault.parse_header ~magic:layout_magic ~max_version:version header
  in
  (* Keyed by proc id so a hostile header count cannot force a huge
     upfront allocation: n is only trusted once n records actually
     parsed. *)
  let addrs = Hashtbl.create (min (max n 1) 4096) in
  for _ = 1 to n do
    let line = Fault.Reader.line r ~what:"layout records" in
    let p, a =
      try Scanf.sscanf line "%d %d" (fun p a -> (p, a))
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        bad_record "bad layout line: %s" line
    in
    if p < 0 || p >= n then
      bad_record "layout procedure id %d out of range [0, %d)" p n;
    if Hashtbl.mem addrs p then
      bad_record "duplicate layout entry for procedure %d" p;
    if a < 0 then bad_record "negative address %d for procedure %d" a p;
    Hashtbl.add addrs p a
  done;
  if version >= 2 then Fault.check_text_trailer r;
  (* n records with distinct ids in [0, n) is a bijection, so every id
     is present. *)
  (n, Array.init n (fun p -> Hashtbl.find addrs p))

let read_layout_reader program r =
  let n, addr = read_layout_records r in
  if n <> Program.n_procs program then
    bad_record "layout has %d procedures but the program has %d" n
      (Program.n_procs program);
  try Layout.of_addresses program addr
  with Invalid_argument msg -> bad_record "invalid layout: %s" msg

let read_program ic =
  Fault.or_fail (fun () -> read_program_reader (Fault.Reader.of_channel ic))

let read_layout program ic =
  Fault.or_fail (fun () -> read_layout_reader program (Fault.Reader.of_channel ic))

(* --- files ----------------------------------------------------------- *)

let load ~op path parse =
  Fault.result (fun () ->
      Fault.io_point ~op:(op ^ " " ^ path);
      In_channel.with_open_bin path (fun ic ->
          parse (Fault.Reader.of_channel ic)))

let load_program_result path = load ~op:"read program" path read_program_reader

let load_layout_result program path =
  load ~op:"read layout" path (read_layout_reader program)

let verify_layout_result path =
  load ~op:"verify layout" path (fun r -> fst (read_layout_records r))

let save_program_result path program =
  Fault.result (fun () -> Fault.atomic_write path (program_string program))

let save_layout_result path layout =
  Fault.result (fun () -> Fault.atomic_write path (layout_string layout))

let unwrap = function Ok v -> v | Error e -> failwith (Fault.to_string e)

let save_program path program = unwrap (save_program_result path program)

let load_program path = unwrap (load_program_result path)

let save_layout path layout = unwrap (save_layout_result path layout)

let load_layout program path = unwrap (load_layout_result program path)
