/* Monotonic time for Trg_util.Clock.

   CLOCK_MONOTONIC is immune to wall-clock jumps (NTP steps, manual
   resets), which is what deadline arithmetic needs.  Returns a negative
   value when the clock is unavailable so the OCaml side can fall back
   to gettimeofday. */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

#if defined(_WIN32)

CAMLprim value trg_clock_monotonic_s(value unit)
{
  CAMLparam1(unit);
  CAMLreturn(caml_copy_double(-1.0));
}

#else

#include <time.h>

CAMLprim value trg_clock_monotonic_s(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    CAMLreturn(caml_copy_double(-1.0));
  CAMLreturn(caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9));
}

#endif
