(** Binary max-heap over integer-keyed items with float priorities.

    Used by the placement algorithms to repeatedly extract the
    heaviest-weight edge from the working graph.  Supports lazy deletion:
    stale entries are pushed over and skipped by the caller via the payload
    validity check it supplies. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
(** Number of entries currently stored (including stale ones). *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio x] inserts [x] with priority [prio]. *)

val pop_max : 'a t -> (float * 'a) option
(** Removes and returns the entry with the largest priority, or [None] if
    the heap is empty.  Ties are broken by insertion order (earlier first),
    which keeps greedy placement deterministic. *)

val peek_max : 'a t -> (float * 'a) option

val iter_entries : 'a t -> (float -> int -> 'a -> unit) -> unit
(** [iter_entries h f] calls [f prio seq payload] for every stored entry —
    including stale ones — in unspecified order, without disturbing the
    heap.  [seq] is the entry's insertion ordinal, the same tie-breaker
    {!pop_max} uses, so a caller can reconstruct exactly which entry the
    next pop would surface (largest [prio], then smallest [seq]) after
    filtering stale entries with its own validity check.  Used by the
    merge driver's decision journal to find the runner-up candidate
    non-destructively: popping and re-pushing would renumber entries and
    change tie-breaking. *)
