(* Table-driven CRC-32.  The digest lives in the low 32 bits of an int;
   OCaml ints are 63-bit so no overflow handling is needed. *)

let mask = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then (!c lsr 1) lxor 0xEDB88320 else !c lsr 1
         done;
         !c))

let empty = 0

let update_byte table crc b = (crc lsr 8) lxor table.((crc lxor b) land 0xFF)

let substring ?(crc = empty) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Checksum.substring";
  let table = Lazy.force table in
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := update_byte table !c (Char.code (String.unsafe_get s i))
  done;
  !c lxor mask

let string ?crc s = substring ?crc s ~pos:0 ~len:(String.length s)

let bytes ?crc b ~pos ~len =
  substring ?crc (Bytes.unsafe_to_string b) ~pos ~len

let to_hex crc = Printf.sprintf "%08x" (crc land mask)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 && v <= mask -> Some v
    | _ -> None
