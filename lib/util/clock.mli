(** Process clocks for deadline arithmetic and backoff.

    Deadlines computed from the wall clock misbehave when the wall clock
    jumps: an NTP step can fire every pending timeout at once, or starve
    them for hours.  {!monotonic} reads [CLOCK_MONOTONIC] (via a tiny C
    stub) and is immune to jumps; when the platform offers no monotonic
    clock it silently degrades to the wall clock, preserving behaviour on
    exotic hosts.

    The evaluation pool routes every deadline and retry-backoff delay
    through this module (see {!Trg_eval.Pool_os}); its deterministic
    simulation backend substitutes a virtual clock with the same
    interface. *)

val monotonic : unit -> float
(** Seconds from an arbitrary (per-process) origin, never decreasing
    under wall-clock adjustments.  Only differences are meaningful. *)

val monotonic_available : bool
(** Whether {!monotonic} is backed by a real monotonic clock ([false]
    means the gettimeofday fallback is in use). *)

val wall : unit -> float
(** [Unix.gettimeofday] — seconds since the epoch, for timestamps that
    must be meaningful outside the process. *)

val sleep : float -> unit
(** Sleeps at least the given number of seconds, resuming after [EINTR]
    until the (monotonic) deadline passes.  Non-positive durations return
    immediately.  Pass this as [~sleep] to {!Fault.with_retry} when a
    caller wants real backoff rather than the no-op default. *)
