(** Reliability layer for the artifact pipeline.

    Every on-disk artifact (traces, programs, layouts) is framed the same
    way: a [<magic> <version> <count>] header line, [count] records, and —
    from format v2 — a CRC-32 trailer covering every byte before it.  This
    module owns the pieces the codecs share: the typed error domain, the
    header/trailer framing helpers, checksummed channel readers, atomic
    file writes, a deterministic fault injector for tests, and a
    retry-with-backoff combinator for transient I/O. *)

(** {2 Typed errors} *)

type error =
  | Bad_magic of { expected : string; got : string }
      (** The file's magic word is not the artifact's. *)
  | Unsupported_version of { magic : string; got : int }
      (** Known artifact, unknown format version. *)
  | Checksum_mismatch of { stored : int; computed : int }
      (** The v2 CRC-32 trailer disagrees with the file contents. *)
  | Truncated of string
      (** Input ended early; the payload names what was being read. *)
  | Bad_record of string
      (** A structurally invalid header or record; the payload says why. *)
  | Io_error of string  (** The operating system refused an I/O operation. *)

exception Error of error

val fail : error -> 'a
(** [fail e] raises [Error e]. *)

val to_string : error -> string

val pp : Format.formatter -> error -> unit

val result : (unit -> 'a) -> ('a, error) result
(** [result f] runs [f], mapping [Error] and [Sys_error] to [Result.Error]
    (the latter as [Io_error]).  Other exceptions pass through. *)

val or_fail : (unit -> 'a) -> 'a
(** Compatibility shim: re-raises [Error e] as [Failure (to_string e)], the
    exception the pre-v2 loaders threw. *)

(** {2 Framing} *)

val parse_header : magic:string -> max_version:int -> string -> int * int
(** [parse_header ~magic ~max_version line] parses [<magic> <v> <n>],
    checking the magic word, [1 <= v <= max_version] and [n >= 0].
    Returns [(v, n)].  Raises {!Error}. *)

val magic_of_line : string -> string
(** First whitespace-delimited token of a header line ([""] if empty) —
    used to sniff an artifact's kind before committing to a parser. *)

(** Checksummed line reader: wraps an [in_channel] and folds every line it
    hands out (newline included) into a running CRC-32, so a reader
    reaches the v2 trailer already knowing the digest of everything
    before it. *)
module Reader : sig
  type t

  val of_channel : in_channel -> t

  val line : t -> what:string -> string
  (** Next line, folded into the CRC.  Raises [Error (Truncated what)] at
      end of input. *)

  val block : t -> bytes -> len:int -> what:string -> unit
  (** Reads exactly [len] raw bytes into the buffer, folded into the CRC.
      Raises [Error (Truncated what)]. *)

  val crc : t -> int
  (** Digest of everything consumed so far. *)
end

val crc_trailer : int -> string
(** The trailer line (newline included) recording a digest: ["#crc <hex>\n"]. *)

val check_text_trailer : Reader.t -> unit
(** Reads one trailer line and compares its digest against the CRC the
    reader accumulated before the call.  Raises [Error
    (Checksum_mismatch _)], [Truncated] or [Bad_record]. *)

val check_binary_trailer : Reader.t -> unit
(** Same for the binary trailer: four raw little-endian digest bytes. *)

(** {2 Atomic file I/O} *)

val read_file : string -> string
(** Whole-file read.  Raises [Error (Io_error _)] (never [Sys_error]). *)

val atomic_write : string -> string -> unit
(** [atomic_write path content] writes to [path ^ ".tmp"] and renames over
    [path], so a crash or injected fault mid-write never leaves a
    half-written artifact behind.  The temp file is removed on failure.
    Raises [Error (Io_error _)].  Consults the ambient {!injector}. *)

(** {2 Fault injection}

    A deterministic, PRNG-seeded corruptor used by the robustness tests
    (and exposed through [trgplace --force-fail] style hooks).  While an
    injector is installed with {!with_injector}, {!atomic_write} and
    {!read_file} fail with [Io_error] at [io_fail_rate], and written
    content suffers per-byte bit-flips at [bit_flip_rate] and loses a
    random suffix at [truncate_rate]. *)

type injector

val injector :
  ?bit_flip_rate:float ->
  ?truncate_rate:float ->
  ?io_fail_rate:float ->
  seed:int ->
  unit ->
  injector
(** All rates default to [0.].  Equal seeds give identical fault
    sequences. *)

val corrupt : injector -> string -> string
(** Applies the injector's bit-flip and truncation processes to a
    serialized artifact. *)

val io_fault : injector -> op:string -> unit
(** Raises [Error (Io_error op)] with probability [io_fail_rate]. *)

val with_injector : injector -> (unit -> 'a) -> 'a
(** Installs the injector for the dynamic extent of the callback
    (restoring the previous one on exit). *)

val io_point : op:string -> unit
(** A syscall-failure injection point: raises [Error (Io_error _)] at the
    ambient injector's [io_fail_rate]; a no-op when none is installed.
    The artifact loaders call this when opening a file. *)

(** {2 Retry} *)

val with_retry :
  ?attempts:int ->
  ?base_delay:float ->
  ?sleep:(float -> unit) ->
  ?retryable:(exn -> bool) ->
  (unit -> 'a) ->
  'a
(** [with_retry f] runs [f], retrying on transient failures (by default
    [Error (Io_error _)] and [Sys_error _]) up to [attempts] times
    (default 3) with exponential backoff: [sleep (base_delay * 2^k)]
    before retry [k].  [sleep] defaults to a no-op so retries are
    immediate and deterministic; pass {!Clock.sleep} for real (EINTR-resuming) backoff.
    The last failure is re-raised when attempts are exhausted;
    non-retryable exceptions propagate immediately. *)
