type error =
  | Bad_magic of { expected : string; got : string }
  | Unsupported_version of { magic : string; got : int }
  | Checksum_mismatch of { stored : int; computed : int }
  | Truncated of string
  | Bad_record of string
  | Io_error of string

exception Error of error

let fail e = raise (Error e)

let to_string = function
  | Bad_magic { expected; got } ->
    Printf.sprintf "bad magic: expected %S, got %S" expected got
  | Unsupported_version { magic; got } ->
    Printf.sprintf "unsupported %s version %d" magic got
  | Checksum_mismatch { stored; computed } ->
    Printf.sprintf "checksum mismatch: file records %s, contents hash to %s"
      (Checksum.to_hex stored) (Checksum.to_hex computed)
  | Truncated what -> Printf.sprintf "truncated input while reading %s" what
  | Bad_record msg -> Printf.sprintf "bad record: %s" msg
  | Io_error msg -> Printf.sprintf "i/o error: %s" msg

let pp fmt e = Format.pp_print_string fmt (to_string e)

let result f =
  try Ok (f ()) with
  | Error e -> Result.Error e
  | Sys_error msg -> Result.Error (Io_error msg)

let or_fail f =
  try f () with
  | Error e -> failwith (to_string e)

(* --- framing --------------------------------------------------------- *)

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun t -> t <> "")

let magic_of_line line = match tokens line with m :: _ -> m | [] -> ""

let parse_header ~magic ~max_version line =
  match tokens line with
  | m :: _ when m <> magic -> fail (Bad_magic { expected = magic; got = m })
  | [ _; v; n ] ->
    let v =
      match int_of_string_opt v with
      | Some v -> v
      | None -> fail (Bad_record ("malformed header: " ^ line))
    in
    if v < 1 || v > max_version then
      fail (Unsupported_version { magic; got = v });
    let n =
      match int_of_string_opt n with
      | Some n -> n
      | None -> fail (Bad_record ("malformed header: " ^ line))
    in
    if n < 0 then fail (Bad_record ("negative record count: " ^ line));
    (v, n)
  | [] -> fail (Bad_magic { expected = magic; got = "" })
  | _ -> fail (Bad_record ("malformed header: " ^ line))

module Reader = struct
  type t = { ic : in_channel; mutable crc : int }

  let of_channel ic = { ic; crc = Checksum.empty }

  let line t ~what =
    match input_line t.ic with
    | line ->
      (* The writers terminate every line with '\n', so folding the
         reconstructed [line ^ "\n"] reproduces the written bytes. *)
      t.crc <- Checksum.string ~crc:(Checksum.string ~crc:t.crc line) "\n";
      line
    | exception End_of_file -> fail (Truncated what)

  let block t buf ~len ~what =
    (try really_input t.ic buf 0 len
     with End_of_file -> fail (Truncated what));
    t.crc <- Checksum.bytes ~crc:t.crc buf ~pos:0 ~len

  let crc t = t.crc
end

let crc_trailer crc = Printf.sprintf "#crc %s\n" (Checksum.to_hex crc)

let check_text_trailer r =
  let computed = Reader.crc r in
  let line = Reader.line r ~what:"checksum trailer" in
  match tokens line with
  | [ "#crc"; hex ] -> (
    match Checksum.of_hex hex with
    | Some stored when stored = computed -> ()
    | Some stored -> fail (Checksum_mismatch { stored; computed })
    | None -> fail (Bad_record ("malformed checksum trailer: " ^ line)))
  | _ -> fail (Bad_record ("malformed checksum trailer: " ^ line))

let check_binary_trailer (r : Reader.t) =
  let computed = Reader.crc r in
  let buf = Bytes.create 4 in
  (* Read the trailer bytes directly: they must not fold into the CRC. *)
  (try really_input r.Reader.ic buf 0 4
   with End_of_file -> fail (Truncated "checksum trailer"));
  let stored = Int32.to_int (Bytes.get_int32_le buf 0) land 0xFFFFFFFF in
  if stored <> computed then fail (Checksum_mismatch { stored; computed })

(* --- fault injection ------------------------------------------------- *)

type injector = {
  prng : Prng.t;
  bit_flip_rate : float;
  truncate_rate : float;
  io_fail_rate : float;
}

let injector ?(bit_flip_rate = 0.) ?(truncate_rate = 0.) ?(io_fail_rate = 0.)
    ~seed () =
  { prng = Prng.create seed; bit_flip_rate; truncate_rate; io_fail_rate }

let corrupt inj s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  if inj.bit_flip_rate > 0. then
    for i = 0 to n - 1 do
      if Prng.bernoulli inj.prng inj.bit_flip_rate then
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int inj.prng 8)))
    done;
  let b =
    if n > 0 && inj.truncate_rate > 0. && Prng.bernoulli inj.prng inj.truncate_rate
    then Bytes.sub b 0 (Prng.int inj.prng n)
    else b
  in
  Bytes.unsafe_to_string b

let io_fault inj ~op =
  if inj.io_fail_rate > 0. && Prng.bernoulli inj.prng inj.io_fail_rate then
    fail (Io_error ("injected fault: " ^ op))

let ambient : injector option ref = ref None

let with_injector inj f =
  let previous = !ambient in
  ambient := Some inj;
  Fun.protect ~finally:(fun () -> ambient := previous) f

let ambient_fault ~op =
  match !ambient with Some inj -> io_fault inj ~op | None -> ()

let io_point ~op = ambient_fault ~op

let ambient_corrupt content =
  match !ambient with Some inj -> corrupt inj content | None -> content

(* --- atomic file I/O ------------------------------------------------- *)

let read_file path =
  ambient_fault ~op:("read " ^ path);
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg -> fail (Io_error msg)

let atomic_write path content =
  ambient_fault ~op:("write " ^ path);
  let content = ambient_corrupt content in
  let tmp = path ^ ".tmp" in
  try
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc content);
    Sys.rename tmp path
  with Sys_error msg ->
    (try Sys.remove tmp with Sys_error _ -> ());
    fail (Io_error msg)

(* --- retry ----------------------------------------------------------- *)

let default_retryable = function
  | Error (Io_error _) | Sys_error _ -> true
  | _ -> false

let with_retry ?(attempts = 3) ?(base_delay = 0.05) ?(sleep = fun _ -> ())
    ?(retryable = default_retryable) f =
  if attempts < 1 then invalid_arg "Fault.with_retry: attempts < 1";
  let rec go k =
    try f ()
    with e when retryable e && k < attempts - 1 ->
      sleep (base_delay *. (2. ** float_of_int k));
      go (k + 1)
  in
  go 0
