(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    Used as the integrity trailer of every v2 on-disk artifact (traces,
    programs, layouts).  Digests are plain non-negative OCaml [int]s
    masked to 32 bits, so they print, compare and serialise trivially.

    The one-shot entry points thread an optional [?crc] accumulator so
    digests can be computed incrementally over a stream of chunks:
    [string ~crc:(string a) b = string (a ^ b)]. *)

val empty : int
(** The digest of the empty string; the initial accumulator value. *)

val string : ?crc:int -> string -> int
(** [string ?crc s] extends the digest [crc] (default {!empty}) with the
    bytes of [s]. *)

val substring : ?crc:int -> string -> pos:int -> len:int -> int
(** Digest of a slice.  Raises [Invalid_argument] on a bad range. *)

val bytes : ?crc:int -> bytes -> pos:int -> len:int -> int
(** Like {!substring} for a [bytes] buffer. *)

val to_hex : int -> string
(** Fixed-width lowercase hex, e.g. ["cbf43926"]. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}: exactly eight hex digits, else [None]. *)
