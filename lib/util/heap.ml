type 'a entry = { prio : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* Larger priority wins; on equal priority the earlier insertion wins so the
   pop order is a deterministic function of the push sequence. *)
let precedes a b = a.prio > b.prio || (a.prio = b.prio && a.seq < b.seq)

let ensure_capacity h =
  if h.size = Array.length h.data then begin
    let cap = max 16 (2 * Array.length h.data) in
    let data = Array.make cap h.data.(0) in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let push h prio payload =
  let entry = { prio; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 16 entry;
  ensure_capacity h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    precedes h.data.(!i) h.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(!i) in
    h.data.(!i) <- h.data.(parent);
    h.data.(parent) <- tmp;
    i := parent
  done

let iter_entries h f =
  for i = 0 to h.size - 1 do
    let e = h.data.(i) in
    f e.prio e.seq e.payload
  done

let peek_max h =
  if h.size = 0 then None else Some (h.data.(0).prio, h.data.(0).payload)

let pop_max h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < h.size && precedes h.data.(l) h.data.(!best) then best := l;
        if r < h.size && precedes h.data.(r) h.data.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!best);
          h.data.(!best) <- tmp;
          i := !best
        end
      done
    end;
    Some (top.prio, top.payload)
  end
