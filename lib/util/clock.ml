external monotonic_s : unit -> float = "trg_clock_monotonic_s"

let monotonic_available = monotonic_s () >= 0.

let wall = Unix.gettimeofday

let monotonic = if monotonic_available then monotonic_s else wall

let sleep d =
  if d > 0. then begin
    let deadline = monotonic () +. d in
    let rec go remaining =
      if remaining > 0. then begin
        (try Unix.sleepf remaining
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go (deadline -. monotonic ())
      end
    in
    go d
  end
