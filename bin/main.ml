(* trgplace: command-line driver for the reproduction experiments.

   Each subcommand regenerates one of the paper's tables or figures; [all]
   reproduces the full evaluation.  [demo] runs the end-to-end pipeline on
   one benchmark and prints a compact before/after comparison. *)

open Cmdliner

let bench_names = Trg_synth.Bench.names @ [ "small" ]

let shapes_of_names names =
  List.map
    (fun n ->
      try Trg_synth.Bench.find n
      with Not_found ->
        Printf.eprintf "unknown benchmark %S (choose from: %s)\n" n
          (String.concat ", " bench_names);
        exit 2)
    names

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

let verbose_term =
  let doc = "Log placement progress (info level) to stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let options_term =
  let runs =
    let doc = "Number of perturbed placements per algorithm (Figure 5)." in
    Arg.(value & opt int 40 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let points =
    let doc = "Number of randomized layouts (Figure 6)." in
    Arg.(value & opt int 80 & info [ "points" ] ~docv:"N" ~doc)
  in
  let benches =
    let doc =
      "Benchmarks to evaluate (repeatable).  Defaults to the six Table 1 \
       workloads."
    in
    Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)
  in
  let quick =
    let doc = "Quick mode: the small workload with few runs." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let full_output =
    let doc = "Print full CDFs / point sets rather than summaries." in
    Arg.(value & flag & info [ "full-output" ] ~doc)
  in
  let keep_going =
    let doc =
      "Isolate failures: a benchmark that fails to prepare or evaluate is \
       reported and skipped instead of aborting the batch.  The exit code \
       is 3 when any step failed."
    in
    Arg.(value & flag & info [ "keep-going"; "k" ] ~doc)
  in
  let strict =
    let doc = "Abort on the first failure (the default; overrides $(b,--keep-going))." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let force_fail =
    let doc =
      "Fault injection: force the named benchmark's preparation to fail \
       (repeatable).  For exercising $(b,--keep-going) isolation."
    in
    Arg.(value & opt_all string [] & info [ "force-fail" ] ~docv:"NAME" ~doc)
  in
  let make verbose runs points benches quick full_output keep_going strict
      force_fail =
    setup_logs verbose;
    let keep_going = keep_going && not strict in
    if quick then
      {
        Trg_eval.Report.quick_options with
        Trg_eval.Report.print_cdf = full_output;
        print_points = full_output;
        keep_going;
        force_fail;
      }
    else
      let selected =
        match benches with [] -> Trg_synth.Bench.all | names -> shapes_of_names names
      in
      {
        Trg_eval.Report.runs;
        fig6_points = points;
        benches = selected;
        print_cdf = full_output;
        print_points = full_output;
        keep_going;
        force_fail;
      }
  in
  Term.(
    const make $ verbose_term $ runs $ points $ benches $ quick $ full_output
    $ keep_going $ strict $ force_fail)

let experiment name doc f =
  let run options =
    match f options with
    | [] -> ()
    | failures ->
      Trg_eval.Report.print_summary failures;
      (* Partial failure: results above are valid, but not complete. *)
      exit 3
  in
  let term = Term.(const run $ options_term) in
  Cmd.v (Cmd.info name ~doc) term

let demo_cmd =
  let doc = "End-to-end pipeline demo on one benchmark." in
  let bench =
    Arg.(value & opt string "small" & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let run name =
    let shape = shapes_of_names [ name ] |> List.hd in
    let r = Trg_eval.Runner.prepare shape in
    let module Table = Trg_util.Table in
    Table.section (Printf.sprintf "DEMO — %s" name);
    let layouts =
      [
        ("default", Trg_eval.Runner.default_layout r);
        ("Hwu-Chang", Trg_eval.Runner.hwu_chang_layout r);
        ("Torrellas", Trg_eval.Runner.torrellas_layout r);
        ("PH", Trg_eval.Runner.ph_layout r);
        ("HKC", Trg_eval.Runner.hkc_layout r);
        ("GBSC", Trg_eval.Runner.gbsc_layout r);
      ]
    in
    Table.print
      ~header:[ "layout"; "train MR"; "test MR" ]
      (List.map
         (fun (label, layout) ->
           [
             label;
             Table.fmt_pct (Trg_eval.Runner.train_miss_rate r layout);
             Table.fmt_pct (Trg_eval.Runner.test_miss_rate r layout);
           ])
         layouts)
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ bench)

(* --- file-based pipeline commands ------------------------------------ *)

let cache_term =
  let size = Arg.(value & opt int 8192 & info [ "cache-size" ] ~docv:"BYTES" ~doc:"Cache capacity.") in
  let line = Arg.(value & opt int 32 & info [ "line-size" ] ~docv:"BYTES" ~doc:"Line size.") in
  let assoc = Arg.(value & opt int 1 & info [ "assoc" ] ~docv:"WAYS" ~doc:"Associativity.") in
  Term.(
    const (fun size line_size assoc -> Trg_cache.Config.make ~size ~line_size ~assoc)
    $ size $ line $ assoc)

let gen_cmd =
  let doc = "Generate a benchmark: program + training/testing traces as files." in
  let bench =
    Arg.(value & opt string "small" & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let out_dir =
    Arg.(value & opt string "." & info [ "out-dir"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let binary =
    Arg.(value & flag & info [ "binary" ] ~doc:"Write traces in the compact binary format.")
  in
  let run name dir binary =
    let shape = shapes_of_names [ name ] |> List.hd in
    let w = Trg_synth.Gen.generate shape in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path f = Filename.concat dir f in
    let save = if binary then Trg_trace.Io.save_binary else Trg_trace.Io.save in
    Trg_program.Serial.save_program (path "program.txt") w.Trg_synth.Gen.program;
    save (path "train.trace") (Trg_synth.Gen.train_trace w);
    save (path "test.trace") (Trg_synth.Gen.test_trace w);
    Printf.printf "wrote %s, %s, %s\n" (path "program.txt") (path "train.trace")
      (path "test.trace")
  in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const run $ bench $ out_dir $ binary)

let place_cmd =
  let doc = "Compute a placement from a program file and a training trace file." in
  let program_f =
    Arg.(required & opt (some string) None & info [ "program"; "p" ] ~docv:"FILE" ~doc:"Program file.")
  in
  let trace_f =
    Arg.(required & opt (some string) None & info [ "trace"; "t" ] ~docv:"FILE" ~doc:"Training trace file.")
  in
  let out_f =
    Arg.(value & opt string "layout.txt" & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output layout file.")
  in
  let algo =
    Arg.(
      value
      & opt (enum [ ("gbsc", `Gbsc); ("gbsc-paged", `Paged); ("gbsc-sa", `Sa); ("ph", `Ph); ("hkc", `Hkc); ("default", `Default) ]) `Gbsc
      & info [ "algo"; "a" ] ~docv:"ALGO" ~doc:"Placement algorithm: gbsc, gbsc-paged, gbsc-sa, ph, hkc or default.")
  in
  let run program_f trace_f out_f algo cache =
    let program = Trg_program.Serial.load_program program_f in
    let trace = Trg_trace.Io.load trace_f in
    let config = Trg_place.Gbsc.default_config ~cache () in
    let layout =
      match algo with
      | `Default -> Trg_program.Layout.default program
      | `Ph -> Trg_place.Ph.place ~wcg:(Trg_profile.Wcg.build trace) program
      | `Hkc ->
        let prof = Trg_place.Gbsc.profile config program trace in
        Trg_place.Hkc.place config program
          ~wcg:(Trg_profile.Wcg.build trace)
          ~popularity:prof.Trg_place.Gbsc.popularity
      | `Gbsc -> Trg_place.Gbsc.run config program trace
      | `Paged ->
        Trg_place.Gbsc.place_paged program (Trg_place.Gbsc.profile config program trace)
      | `Sa -> Trg_place.Gbsc_sa.run config program trace
    in
    Trg_program.Serial.save_layout out_f layout;
    Printf.printf "wrote %s (span %d bytes, %d gap bytes)\n" out_f
      (Trg_program.Layout.span layout)
      (Trg_program.Layout.gap_bytes layout program)
  in
  Cmd.v (Cmd.info "place" ~doc) Term.(const run $ program_f $ trace_f $ out_f $ algo $ cache_term)

let simulate_cmd =
  let doc = "Simulate a layout file against a trace file and report the miss rate." in
  let program_f =
    Arg.(required & opt (some string) None & info [ "program"; "p" ] ~docv:"FILE" ~doc:"Program file.")
  in
  let layout_f =
    Arg.(required & opt (some string) None & info [ "layout"; "l" ] ~docv:"FILE" ~doc:"Layout file.")
  in
  let trace_f =
    Arg.(required & opt (some string) None & info [ "trace"; "t" ] ~docv:"FILE" ~doc:"Trace file.")
  in
  let run program_f layout_f trace_f cache =
    let program = Trg_program.Serial.load_program program_f in
    let layout = Trg_program.Serial.load_layout program layout_f in
    let trace = Trg_trace.Io.load trace_f in
    let result = Trg_cache.Sim.simulate program layout cache trace in
    Printf.printf "cache %s: %d accesses, %d misses, miss rate %.4f%%\n"
      (Format.asprintf "%a" Trg_cache.Config.pp cache)
      result.Trg_cache.Sim.accesses result.Trg_cache.Sim.misses
      (100. *. Trg_cache.Sim.miss_rate result)
  in
  Cmd.v (Cmd.info "simulate" ~doc) Term.(const run $ program_f $ layout_f $ trace_f $ cache_term)

let export_dot_cmd =
  let doc = "Export a benchmark's WCG or TRG as Graphviz dot." in
  let bench =
    Arg.(value & opt string "small" & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let what =
    Arg.(
      value
      & opt (enum [ ("wcg", `Wcg); ("trg-select", `Select); ("trg-place", `Place) ]) `Select
      & info [ "what"; "w" ] ~docv:"GRAPH" ~doc:"Graph to export: wcg, trg-select or trg-place.")
  in
  let out =
    Arg.(value & opt string "graph.dot" & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let min_weight =
    Arg.(value & opt float 0. & info [ "min-weight" ] ~docv:"W" ~doc:"Drop edges lighter than W.")
  in
  let run name what out min_weight =
    let shape = shapes_of_names [ name ] |> List.hd in
    let r = Trg_eval.Runner.prepare shape in
    let program = Trg_eval.Runner.program r in
    let graph, namer =
      match what with
      | `Wcg -> (r.Trg_eval.Runner.wcg, Trg_program.Program.name program)
      | `Select ->
        ( r.Trg_eval.Runner.prof.Trg_place.Gbsc.select.Trg_profile.Trg.graph,
          Trg_program.Program.name program )
      | `Place ->
        let chunks = r.Trg_eval.Runner.prof.Trg_place.Gbsc.chunks in
        ( r.Trg_eval.Runner.prof.Trg_place.Gbsc.place.Trg_profile.Trg.graph,
          fun c ->
            Printf.sprintf "%s#%d"
              (Trg_program.Program.name program (Trg_program.Chunk.owner chunks c))
              (Trg_program.Chunk.index_in_proc chunks c) )
    in
    let oc = open_out out in
    output_string oc (Trg_profile.Graph.to_dot ~name:namer ~min_weight graph);
    close_out oc;
    Printf.printf "wrote %s (%d nodes, %d edges)\n" out
      (Trg_profile.Graph.n_nodes graph)
      (Trg_profile.Graph.n_edges graph)
  in
  Cmd.v (Cmd.info "export-dot" ~doc) Term.(const run $ bench $ what $ out $ min_weight)

let verify_cmd =
  let doc =
    "Check artifact integrity: header, records, and (v2) CRC-32 trailer of \
     trace, program and layout files."
  in
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc:"Artifact files.")
  in
  let sniff_magic path =
    In_channel.with_open_bin path (fun ic ->
        match In_channel.input_line ic with
        | Some line -> Trg_util.Fault.magic_of_line line
        | None -> "")
  in
  let verify_one path =
    let described f describe =
      match f with Ok v -> Ok (describe v) | Error e -> Error (Trg_util.Fault.to_string e)
    in
    match sniff_magic path with
    | exception Sys_error msg -> Error msg
    | "trgplace-trace" | "trgplace-traceb" ->
      described (Trg_trace.Io.load_result path) (fun t ->
          Printf.sprintf "trace (%d events)" (Trg_trace.Trace.length t))
    | "trgplace-program" ->
      described (Trg_program.Serial.load_program_result path) (fun p ->
          Printf.sprintf "program (%d procedures)" (Trg_program.Program.n_procs p))
    | "trgplace-layout" ->
      described (Trg_program.Serial.verify_layout_result path) (fun n ->
          Printf.sprintf "layout (%d procedures, structural check only)" n)
    | got -> Error (Printf.sprintf "unknown artifact magic %S" got)
  in
  let run files =
    let ok =
      List.fold_left
        (fun ok path ->
          match verify_one path with
          | Ok msg ->
            Printf.printf "%s: OK %s\n" path msg;
            ok
          | Error msg ->
            Printf.printf "%s: FAIL %s\n" path msg;
            false)
        true files
    in
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ files)

let show_layout_cmd =
  let doc = "Show a layout's cache mapping (per-set occupants)." in
  let program_f =
    Arg.(required & opt (some string) None & info [ "program"; "p" ] ~docv:"FILE" ~doc:"Program file.")
  in
  let layout_f =
    Arg.(required & opt (some string) None & info [ "layout"; "l" ] ~docv:"FILE" ~doc:"Layout file.")
  in
  let trace_f =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace"; "t" ] ~docv:"FILE"
          ~doc:"Optional profile trace; when given, only popular procedures are shown.")
  in
  let run program_f layout_f trace_f cache =
    let program = Trg_program.Serial.load_program program_f in
    let layout = Trg_program.Serial.load_layout program layout_f in
    let only =
      match trace_f with
      | None -> None
      | Some path ->
        let trace = Trg_trace.Io.load path in
        let stats =
          Trg_trace.Tstats.compute ~n_procs:(Trg_program.Program.n_procs program) trace
        in
        let pop = Trg_profile.Popularity.select program stats in
        Some (Trg_profile.Popularity.keep pop)
    in
    print_string (Trg_place.View.cache_map ?only program cache layout);
    print_endline "occupancy:";
    print_string (Trg_place.View.occupancy_summary ?only program cache layout)
  in
  Cmd.v (Cmd.info "show-layout" ~doc)
    Term.(const run $ program_f $ layout_f $ trace_f $ cache_term)

let cmds =
  [
    gen_cmd;
    place_cmd;
    simulate_cmd;
    export_dot_cmd;
    show_layout_cmd;
    verify_cmd;
    experiment "table1" "Reproduce Table 1 (benchmark characteristics)."
      Trg_eval.Report.table1;
    experiment "characterize" "Reuse-distance workload characterisation."
      Trg_eval.Report.characterize;
    experiment "figure5" "Reproduce Figure 5 (miss-rate distributions)."
      Trg_eval.Report.figure5;
    experiment "figure6" "Reproduce Figure 6 (metric/miss correlation)."
      Trg_eval.Report.figure6;
    experiment "padding" "Reproduce the Section 5.1 padding example."
      Trg_eval.Report.padding;
    experiment "setassoc" "Reproduce the Section 6 set-associative extension."
      Trg_eval.Report.setassoc;
    experiment "ablation" "Ablate GBSC's design choices." Trg_eval.Report.ablation;
    experiment "splitting" "Procedure splitting combined with GBSC."
      Trg_eval.Report.splitting;
    experiment "paging" "Page-locality linearisation variant (Section 4.3)."
      Trg_eval.Report.paging;
    experiment "sampling" "Sampled-profile quality (Section 4.4 practicality)."
      Trg_eval.Report.sampling;
    experiment "blocks" "Intra-procedure basic-block reordering."
      Trg_eval.Report.blocks;
    experiment "online" "Online (streaming) vs offline profiling."
      Trg_eval.Report.online;
    experiment "headroom" "Greedy GBSC vs direct metric search (annealing)."
      Trg_eval.Report.headroom;
    experiment "hierarchy" "Two-level cache hierarchy (conclusion's outlook)."
      Trg_eval.Report.hierarchy;
    experiment "sweep" "Cache-size sweep (Section 5.2 robustness note)."
      Trg_eval.Report.sweep;
    experiment "all" "Run every experiment in paper order." Trg_eval.Report.all;
    demo_cmd;
  ]

let () =
  let doc = "procedure placement using temporal ordering information (MICRO-30 reproduction)" in
  let info = Cmd.info "trgplace" ~version:"1.0.0" ~doc in
  (* [Failure] is the boundary for expected runtime errors (corrupt artifacts,
     strict-mode aborts): render it as a one-line message instead of letting
     cmdliner report an internal error.  Anything else is still a crash. *)
  exit
    (try Cmd.eval ~catch:false (Cmd.group info cmds)
     with Failure msg ->
       Printf.eprintf "trgplace: %s\n%!" msg;
       1)
