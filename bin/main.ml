(* trgplace: command-line driver for the reproduction experiments.

   Each subcommand regenerates one of the paper's tables or figures; [all]
   reproduces the full evaluation.  [demo] runs the end-to-end pipeline on
   one benchmark and prints a compact before/after comparison. *)

open Cmdliner
module J = Trg_obs.Json
module Log = Trg_obs.Log
module Journal = Trg_obs.Journal

let bench_names = Trg_synth.Bench.names @ [ "small" ]

let shapes_of_names names =
  List.map
    (fun n ->
      try Trg_synth.Bench.find n
      with Not_found ->
        Log.err (fun m ->
            m "unknown benchmark %S (choose from: %s)" n
              (String.concat ", " bench_names));
        exit 2)
    names

(* Only an explicit [--verbose] touches the level: without it the
   process keeps [Log]'s default, which honours $(b,TRGPLACE_LOG). *)
let setup_logs verbose = if verbose then Log.set_level Log.Info

let verbose_term =
  let doc =
    "Log placement progress (info level) to stderr.  Without this flag \
     the level comes from the TRGPLACE_LOG environment variable (quiet, \
     error, warn, info or debug; default warn)."
  in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let profile_term =
  let doc =
    "Hot-path profiling: record prof/* wall-time histograms (per-merge \
     cost in the placement search, incremental-engine seed/charge/apply \
     phases, pool queue-wait vs run time).  Off by default: the \
     instrumented sites then cost one branch, register nothing, and \
     manifests stay byte-comparable.  Inspect with $(b,trgplace stats) \
     on a $(b,--metrics-out) manifest."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let cost_engine_term =
  let doc =
    "Conflict-cost evaluator for the placement search: $(b,incr) (the \
     default) maintains pairwise cost arrays incrementally and is \
     10-100x cheaper per merge; $(b,full) recomputes every cost array \
     from profile edges.  Layouts and miss rates are bit-identical — \
     models outside the incremental engine's exactness guarantee fall \
     back to full automatically (counted in cost/incr/fallbacks)."
  in
  Arg.(
    value
    & opt
        (enum [ ("full", Trg_place.Cost.Full); ("incr", Trg_place.Cost.Incr) ])
        Trg_place.Cost.Incr
    & info [ "cost-engine" ] ~docv:"ENGINE" ~doc)

let policy_conv =
  let parse s =
    match Trg_cache.Policy.of_string s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  let print ppf k = Format.pp_print_string ppf (Trg_cache.Policy.to_string k) in
  Arg.conv (parse, print)

let policy_term =
  let doc =
    Printf.sprintf
      "Replacement policy for every single-level cache simulation: %s.  \
       All policies coincide at assoc 1 (the paper's direct-mapped \
       operating point), so the default, lru, reproduces the historical \
       numbers bit-for-bit."
      (String.concat ", " Trg_cache.Policy.names)
  in
  Arg.(value & opt policy_conv Trg_cache.Policy.Lru & info [ "policy" ] ~docv:"POLICY" ~doc)

let cpus_term =
  let doc =
    Printf.sprintf
      "CPU preset the hierarchy experiment simulates (repeatable): %s.  \
       Default: %s."
      (String.concat ", " Trg_cache.Cpu.names)
      (String.concat " " Trg_cache.Cpu.default_selection)
  in
  Arg.(value & opt_all string [] & info [ "cpu" ] ~docv:"NAME" ~doc)

(* Resolve --cpu names at option-parse time so a typo exits 2 with the
   valid list instead of failing mid-experiment. *)
let resolve_cpus = function
  | [] -> Trg_cache.Cpu.default_selection
  | names ->
    List.iter
      (fun n ->
        match Trg_cache.Cpu.find n with
        | Ok _ -> ()
        | Error msg ->
          Log.err (fun m -> m "%s" msg);
          exit 2)
      names;
    names

let options_term =
  let runs =
    let doc = "Number of perturbed placements per algorithm (Figure 5)." in
    Arg.(value & opt int 40 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let points =
    let doc = "Number of randomized layouts (Figure 6)." in
    Arg.(value & opt int 80 & info [ "points" ] ~docv:"N" ~doc)
  in
  let benches =
    let doc =
      "Benchmarks to evaluate (repeatable).  Defaults to the six Table 1 \
       workloads."
    in
    Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)
  in
  let quick =
    let doc = "Quick mode: the small workload with few runs." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let full_output =
    let doc = "Print full CDFs / point sets rather than summaries." in
    Arg.(value & flag & info [ "full-output" ] ~doc)
  in
  let keep_going =
    let doc =
      "Isolate failures: a benchmark that fails to prepare or evaluate is \
       reported and skipped instead of aborting the batch.  The exit code \
       is 3 when any step failed."
    in
    Arg.(value & flag & info [ "keep-going"; "k" ] ~doc)
  in
  let strict =
    let doc = "Abort on the first failure (the default; overrides $(b,--keep-going))." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let force_fail =
    let doc =
      "Fault injection: force the named benchmark's preparation to fail \
       (repeatable).  For exercising $(b,--keep-going) isolation."
    in
    Arg.(value & opt_all string [] & info [ "force-fail" ] ~docv:"NAME" ~doc)
  in
  let jobs =
    let doc =
      "Worker processes for sharded evaluation.  0 (the default) \
       auto-detects the CPU count.  Results are identical whatever the \
       job count."
    in
    Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let timeout =
    let doc =
      "Per-work-unit wall-clock budget in seconds; an overrunning worker \
       is killed and the unit reported as failed."
    in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let retries =
    let doc =
      "Extra dispatches for work units lost to infrastructure faults (a \
       crashed or timed-out worker, a corrupt result stream), with \
       exponential backoff.  Units whose own code fails are never \
       retried.  0 (the default) fails such units immediately."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let make verbose profile runs points benches quick full_output keep_going
      strict force_fail jobs timeout retries cost_engine policy cpus =
    setup_logs verbose;
    Trg_obs.Prof.set_enabled profile;
    Trg_place.Cost.set_engine cost_engine;
    let cpus = resolve_cpus cpus in
    let keep_going = keep_going && not strict in
    if jobs < 0 then begin
      Log.err (fun m -> m "--jobs must be non-negative (got %d)" jobs);
      exit 2
    end;
    (match timeout with
    | Some t when t <= 0. ->
      Log.err (fun m -> m "--timeout must be positive (got %g)" t);
      exit 2
    | _ -> ());
    if retries < 0 then begin
      Log.err (fun m -> m "--retries must be non-negative (got %d)" retries);
      exit 2
    end;
    if quick then
      {
        Trg_eval.Report.quick_options with
        Trg_eval.Report.print_cdf = full_output;
        print_points = full_output;
        keep_going;
        force_fail;
        jobs;
        timeout;
        retries;
        policy;
        cpus;
      }
    else
      let selected =
        match benches with [] -> Trg_synth.Bench.all | names -> shapes_of_names names
      in
      {
        Trg_eval.Report.runs;
        fig6_points = points;
        benches = selected;
        print_cdf = full_output;
        print_points = full_output;
        keep_going;
        force_fail;
        jobs;
        timeout;
        retries;
        policy;
        cpus;
      }
  in
  Term.(
    const make $ verbose_term $ profile_term $ runs $ points $ benches $ quick
    $ full_output $ keep_going $ strict $ force_fail $ jobs $ timeout
    $ retries $ cost_engine_term $ policy_term $ cpus_term)

(* --- telemetry manifest plumbing ------------------------------------- *)

let metrics_term =
  let doc =
    "Enable telemetry and write a JSON run manifest (resolved options, \
     counters, spans, heap statistics, exit status) to $(docv) when the \
     command finishes — also on partial or complete failure.  Inspect it \
     with $(b,trgplace stats)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* --- decision-journal plumbing ---------------------------------------- *)

let journal_out_term =
  let doc =
    "Record a merge-decision journal — one record per merge decision: the \
     chosen pair, winning weight, runner-up candidate and margin, group \
     sizes, and GBSC's offset with its conflict cost — and write it to \
     $(docv) (CRC-guarded, atomic).  The journalled placement runs \
     in-process on the first selected benchmark (pool workers cannot feed \
     the journal).  Verify with $(b,trgplace replay); interrogate with \
     $(b,trgplace why)."
  in
  Arg.(value & opt (some string) None & info [ "journal-out" ] ~docv:"FILE" ~doc)

let journal_algo_term =
  let doc = "Algorithm whose decisions to journal." in
  Arg.(
    value
    & opt (enum [ ("gbsc", "gbsc"); ("ph", "ph"); ("hkc", "hkc"); ("gbsc-sa", "gbsc-sa") ]) "gbsc"
    & info [ "journal-algo" ] ~docv:"ALGO" ~doc)

(* The manifest's "journal" member: enough to find the file and check it
   is the one the run wrote (schema, step count, layout CRC). *)
let journal_manifest_json ~path (j : Journal.t) =
  J.Obj
    [
      ("schema", J.String Journal.schema);
      ("path", J.String path);
      ("algo", J.String j.Journal.meta.Journal.algo);
      ("source", J.String j.Journal.meta.Journal.source);
      ("engine", J.String j.Journal.meta.Journal.engine);
      ("steps", J.Int (Array.length j.Journal.decisions));
      ( "layout_crc",
        J.String (Printf.sprintf "%08x" j.Journal.claims.Journal.layout_crc) );
    ]

let save_journal path j =
  Journal.save path j;
  Log.info (fun m ->
      m "wrote decision journal %s (%d steps)" path
        (Array.length j.Journal.decisions));
  journal_manifest_json ~path j

let config_json (o : Trg_eval.Report.options) =
  [
    ("runs", J.Int o.Trg_eval.Report.runs);
    ("fig6_points", J.Int o.fig6_points);
    ( "benches",
      J.List (List.map (fun s -> J.String s.Trg_synth.Shape.name) o.benches) );
    ("print_cdf", J.Bool o.print_cdf);
    ("print_points", J.Bool o.print_points);
    ("keep_going", J.Bool o.keep_going);
    ("force_fail", J.List (List.map (fun n -> J.String n) o.force_fail));
    ("jobs", J.Int o.jobs);
    ("timeout", match o.timeout with Some t -> J.Float t | None -> J.Null);
    ("retries", J.Int o.retries);
    ("policy", J.String (Trg_cache.Policy.to_string o.policy));
    ("cpus", J.List (List.map (fun n -> J.String n) o.cpus));
    (* Read back from the process-global set at option-parse time, so the
       manifest records the engine the run actually used. *)
    ( "cost_engine",
      J.String (Trg_place.Cost.engine_name (Trg_place.Cost.engine ())) );
  ]

(* Manifest writing wraps every command outcome, so a failed run still
   leaves a machine-readable record of how far it got.  [explain] embeds
   a miss-attribution summary when the command produced one. *)
let finish_run ~command ~config ?explain ?journal metrics_out status code =
  (match metrics_out with
  | None -> ()
  | Some path ->
    let manifest =
      Trg_obs.Manifest.build ~command ~argv:(Array.to_list Sys.argv) ~config
        ?explain ?journal ~status ~exit_code:code ()
    in
    Trg_obs.Manifest.write path manifest;
    Log.info (fun m -> m "wrote run manifest %s" path));
  if code <> 0 then exit code

let experiment name doc f =
  let run options metrics_out journal_out journal_algo =
    if metrics_out <> None then Trg_obs.Span.set_enabled true;
    let finish ?journal status code =
      finish_run ~command:name ~config:(config_json options) ?journal
        metrics_out status code
    in
    (* One extra in-process placement on the first selected benchmark:
       the experiment's own placements may run inside forked pool
       workers, which cannot feed the process-global journal. *)
    let record_journal () =
      match journal_out with
      | None -> None
      | Some path ->
        let shape = List.hd options.Trg_eval.Report.benches in
        let runner = Trg_eval.Runner.prepare shape in
        let j, _layout = Trg_eval.Replay.record ~algo:journal_algo runner in
        let member = save_journal path j in
        Printf.printf "wrote decision journal %s (%d steps)\n" path
          (Array.length j.Journal.decisions);
        Some member
    in
    match Trg_obs.Span.with_ name (fun () -> f options) with
    | [] -> (
      match record_journal () with
      | journal -> finish ?journal Trg_obs.Manifest.Ok 0
      | exception Failure msg ->
        Log.err (fun m -> m "journal: %s" msg);
        finish Trg_obs.Manifest.Failed 1)
    | failures ->
      Trg_eval.Report.print_summary failures;
      (* Partial failure: results above are valid, but not complete. *)
      finish Trg_obs.Manifest.Partial 3
    | exception Failure msg ->
      Log.err (fun m -> m "%s" msg);
      finish Trg_obs.Manifest.Failed 1
  in
  let term =
    Term.(
      const run $ options_term $ metrics_term $ journal_out_term
      $ journal_algo_term)
  in
  Cmd.v (Cmd.info name ~doc) term

let demo_cmd =
  let doc = "End-to-end pipeline demo on one benchmark." in
  let bench =
    Arg.(value & opt string "small" & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let run name metrics_out =
    if metrics_out <> None then Trg_obs.Span.set_enabled true;
    let finish =
      finish_run ~command:"demo" ~config:[ ("bench", J.String name) ] metrics_out
    in
    let body () =
      let shape = shapes_of_names [ name ] |> List.hd in
      let r = Trg_eval.Runner.prepare shape in
      let module Table = Trg_util.Table in
      Table.section (Printf.sprintf "DEMO — %s" name);
      let layouts =
        [
          ("default", Trg_eval.Runner.default_layout r);
          ("Hwu-Chang", Trg_eval.Runner.hwu_chang_layout r);
          ("Torrellas", Trg_eval.Runner.torrellas_layout r);
          ("PH", Trg_eval.Runner.ph_layout r);
          ("HKC", Trg_eval.Runner.hkc_layout r);
          ("GBSC", Trg_eval.Runner.gbsc_layout r);
        ]
      in
      Table.print
        ~header:[ "layout"; "train MR"; "test MR" ]
        (List.map
           (fun (label, layout) ->
             [
               label;
               Table.fmt_pct (Trg_eval.Runner.train_miss_rate r layout);
               Table.fmt_pct (Trg_eval.Runner.test_miss_rate r layout);
             ])
           layouts)
    in
    match Trg_obs.Span.with_ "demo" body with
    | () -> finish Trg_obs.Manifest.Ok 0
    | exception Failure msg ->
      Log.err (fun m -> m "%s" msg);
      finish Trg_obs.Manifest.Failed 1
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ bench $ metrics_term)

(* --- file-based pipeline commands ------------------------------------ *)

let cache_term =
  let size = Arg.(value & opt int 8192 & info [ "cache-size" ] ~docv:"BYTES" ~doc:"Cache capacity.") in
  let line = Arg.(value & opt int 32 & info [ "line-size" ] ~docv:"BYTES" ~doc:"Line size.") in
  let assoc = Arg.(value & opt int 1 & info [ "assoc" ] ~docv:"WAYS" ~doc:"Associativity.") in
  Term.(
    const (fun size line_size assoc -> Trg_cache.Config.make ~size ~line_size ~assoc)
    $ size $ line $ assoc)

let gen_cmd =
  let doc = "Generate a benchmark: program + training/testing traces as files." in
  let bench =
    Arg.(value & opt string "small" & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let out_dir =
    Arg.(value & opt string "." & info [ "out-dir"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let binary =
    Arg.(value & flag & info [ "binary" ] ~doc:"Write traces in the compact binary format.")
  in
  let run name dir binary =
    let shape = shapes_of_names [ name ] |> List.hd in
    let w = Trg_synth.Gen.generate shape in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path f = Filename.concat dir f in
    let save = if binary then Trg_trace.Io.save_binary else Trg_trace.Io.save in
    Trg_program.Serial.save_program (path "program.txt") w.Trg_synth.Gen.program;
    save (path "train.trace") (Trg_synth.Gen.train_trace w);
    save (path "test.trace") (Trg_synth.Gen.test_trace w);
    Printf.printf "wrote %s, %s, %s\n" (path "program.txt") (path "train.trace")
      (path "test.trace")
  in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const run $ bench $ out_dir $ binary)

(* Artifact loads behind the file-mode commands retry transient I/O
   errors with real backoff ([Fault.with_retry]'s default sleep is a
   no-op, kept for tests; {!Trg_util.Clock.sleep} waits out the delay,
   resuming across EINTR). *)
let retrying f = Trg_util.Fault.with_retry ~sleep:Trg_util.Clock.sleep f

let place_cmd =
  let doc = "Compute a placement from a program file and a training trace file." in
  let program_f =
    Arg.(required & opt (some string) None & info [ "program"; "p" ] ~docv:"FILE" ~doc:"Program file.")
  in
  let trace_f =
    Arg.(required & opt (some string) None & info [ "trace"; "t" ] ~docv:"FILE" ~doc:"Training trace file.")
  in
  let out_f =
    Arg.(value & opt string "layout.txt" & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output layout file.")
  in
  let algo =
    Arg.(
      value
      & opt (enum [ ("gbsc", `Gbsc); ("gbsc-paged", `Paged); ("gbsc-sa", `Sa); ("ph", `Ph); ("hkc", `Hkc); ("default", `Default) ]) `Gbsc
      & info [ "algo"; "a" ] ~docv:"ALGO" ~doc:"Placement algorithm: gbsc, gbsc-paged, gbsc-sa, ph, hkc or default.")
  in
  let run program_f trace_f out_f algo cache cost_engine =
    Trg_place.Cost.set_engine cost_engine;
    let program = retrying (fun () -> Trg_program.Serial.load_program program_f) in
    let trace = retrying (fun () -> Trg_trace.Io.load trace_f) in
    let config = Trg_place.Gbsc.default_config ~cache () in
    let layout =
      match algo with
      | `Default -> Trg_program.Layout.default program
      | `Ph -> Trg_place.Ph.place ~wcg:(Trg_profile.Wcg.build trace) program
      | `Hkc ->
        let prof = Trg_place.Gbsc.profile config program trace in
        Trg_place.Hkc.place config program
          ~wcg:(Trg_profile.Wcg.build trace)
          ~popularity:prof.Trg_place.Gbsc.popularity
      | `Gbsc -> Trg_place.Gbsc.run config program trace
      | `Paged ->
        Trg_place.Gbsc.place_paged program (Trg_place.Gbsc.profile config program trace)
      | `Sa -> Trg_place.Gbsc_sa.run config program trace
    in
    Trg_program.Serial.save_layout out_f layout;
    Printf.printf "wrote %s (span %d bytes, %d gap bytes)\n" out_f
      (Trg_program.Layout.span layout)
      (Trg_program.Layout.gap_bytes layout program)
  in
  Cmd.v (Cmd.info "place" ~doc)
    Term.(const run $ program_f $ trace_f $ out_f $ algo $ cache_term $ cost_engine_term)

let simulate_cmd =
  let doc = "Simulate a layout file against a trace file and report the miss rate." in
  let program_f =
    Arg.(required & opt (some string) None & info [ "program"; "p" ] ~docv:"FILE" ~doc:"Program file.")
  in
  let layout_f =
    Arg.(required & opt (some string) None & info [ "layout"; "l" ] ~docv:"FILE" ~doc:"Layout file.")
  in
  let trace_f =
    Arg.(required & opt (some string) None & info [ "trace"; "t" ] ~docv:"FILE" ~doc:"Trace file.")
  in
  let run program_f layout_f trace_f cache policy =
    let program = retrying (fun () -> Trg_program.Serial.load_program program_f) in
    let layout =
      retrying (fun () -> Trg_program.Serial.load_layout program layout_f)
    in
    let trace = retrying (fun () -> Trg_trace.Io.load trace_f) in
    let result = Trg_cache.Sim.simulate ~policy program layout cache trace in
    Printf.printf "cache %s (%s): %d accesses, %d misses, miss rate %.4f%%\n"
      (Format.asprintf "%a" Trg_cache.Config.pp cache)
      (Trg_cache.Policy.to_string policy)
      result.Trg_cache.Sim.accesses result.Trg_cache.Sim.misses
      (100. *. Trg_cache.Sim.miss_rate result)
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ program_f $ layout_f $ trace_f $ cache_term $ policy_term)

let export_dot_cmd =
  let doc = "Export a benchmark's WCG or TRG as Graphviz dot." in
  let bench =
    Arg.(value & opt string "small" & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let what =
    Arg.(
      value
      & opt (enum [ ("wcg", `Wcg); ("trg-select", `Select); ("trg-place", `Place) ]) `Select
      & info [ "what"; "w" ] ~docv:"GRAPH" ~doc:"Graph to export: wcg, trg-select or trg-place.")
  in
  let out =
    Arg.(value & opt string "graph.dot" & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let min_weight =
    Arg.(value & opt float 0. & info [ "min-weight" ] ~docv:"W" ~doc:"Drop edges lighter than W.")
  in
  let run name what out min_weight =
    let shape = shapes_of_names [ name ] |> List.hd in
    let r = Trg_eval.Runner.prepare shape in
    let program = Trg_eval.Runner.program r in
    let graph, namer =
      match what with
      | `Wcg -> (r.Trg_eval.Runner.wcg, Trg_program.Program.name program)
      | `Select ->
        ( r.Trg_eval.Runner.prof.Trg_place.Gbsc.select.Trg_profile.Trg.graph,
          Trg_program.Program.name program )
      | `Place ->
        let chunks = r.Trg_eval.Runner.prof.Trg_place.Gbsc.chunks in
        ( r.Trg_eval.Runner.prof.Trg_place.Gbsc.place.Trg_profile.Trg.graph,
          fun c ->
            Printf.sprintf "%s#%d"
              (Trg_program.Program.name program (Trg_program.Chunk.owner chunks c))
              (Trg_program.Chunk.index_in_proc chunks c) )
    in
    let oc = open_out out in
    output_string oc (Trg_profile.Graph.to_dot ~name:namer ~min_weight graph);
    close_out oc;
    Printf.printf "wrote %s (%d nodes, %d edges)\n" out
      (Trg_profile.Graph.n_nodes graph)
      (Trg_profile.Graph.n_edges graph)
  in
  Cmd.v (Cmd.info "export-dot" ~doc) Term.(const run $ bench $ what $ out $ min_weight)

let verify_cmd =
  let doc =
    "Check artifact integrity: header, records, and (v2) CRC-32 trailer of \
     trace, program and layout files."
  in
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc:"Artifact files.")
  in
  let sniff_magic path =
    In_channel.with_open_bin path (fun ic ->
        match In_channel.input_line ic with
        | Some line -> Trg_util.Fault.magic_of_line line
        | None -> "")
  in
  let verify_one path =
    let described f describe =
      match f with Ok v -> Ok (describe v) | Error e -> Error (Trg_util.Fault.to_string e)
    in
    match sniff_magic path with
    | exception Sys_error msg -> Error msg
    | "trgplace-trace" | "trgplace-traceb" ->
      described (Trg_trace.Io.load_result path) (fun t ->
          Printf.sprintf "trace (%d events)" (Trg_trace.Trace.length t))
    | "trgplace-program" ->
      described (Trg_program.Serial.load_program_result path) (fun p ->
          Printf.sprintf "program (%d procedures)" (Trg_program.Program.n_procs p))
    | "trgplace-layout" ->
      described (Trg_program.Serial.verify_layout_result path) (fun n ->
          Printf.sprintf "layout (%d procedures, structural check only)" n)
    | got -> Error (Printf.sprintf "unknown artifact magic %S" got)
  in
  let run files =
    let ok =
      List.fold_left
        (fun ok path ->
          match verify_one path with
          | Ok msg ->
            Printf.printf "%s: OK %s\n" path msg;
            ok
          | Error msg ->
            Printf.printf "%s: FAIL %s\n" path msg;
            false)
        true files
    in
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ files)

let explain_cmd =
  let doc =
    "Classify and attribute every cache miss of a layout: compulsory / \
     capacity / conflict split (3C, via a fully-associative LRU shadow \
     cache), the conflicting procedure pairs with their TRG edge weights, \
     per-procedure and per-set pressure, and a temporal miss timeline."
  in
  let bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench"; "b" ] ~docv:"NAME"
          ~doc:"Benchmark to diagnose (generates and profiles it first).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shorthand for $(b,--bench small).")
  in
  let algos =
    Arg.(
      value
      & opt_all string []
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:
            "Layouts to diagnose (repeatable): original, ph, hkc, gbsc, \
             hwu-chang, torrellas.  Default: original ph hkc gbsc.")
  in
  let train =
    Arg.(
      value & flag
      & info [ "train" ]
          ~doc:"Diagnose on the training trace instead of the testing trace.")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Skip the set-preserving line-alignment normalisation (compulsory \
             counts are then not comparable across layouts).")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Rows per ranking table.")
  in
  let intervals =
    Arg.(
      value & opt int 60
      & info [ "intervals" ] ~docv:"N" ~doc:"Miss-timeline resolution.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the full report as strict JSON (atomically).")
  in
  let program_f =
    Arg.(
      value
      & opt (some string) None
      & info [ "program"; "p" ] ~docv:"FILE" ~doc:"Program file (file-triple mode).")
  in
  let layout_f =
    Arg.(
      value
      & opt (some string) None
      & info [ "layout"; "l" ] ~docv:"FILE" ~doc:"Layout file (file-triple mode).")
  in
  let trace_f =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace"; "t" ] ~docv:"FILE" ~doc:"Trace file (file-triple mode).")
  in
  let run verbose bench quick algos train raw top intervals json_out program_f
      layout_f trace_f cache policy cost_engine metrics_out journal_out
      journal_algo =
    setup_logs verbose;
    Trg_place.Cost.set_engine cost_engine;
    if intervals <= 0 then begin
      Log.err (fun m -> m "explain: --intervals must be positive (got %d)" intervals);
      exit 2
    end;
    if metrics_out <> None then Trg_obs.Span.set_enabled true;
    let config =
      [
        ("bench", match bench with Some b -> J.String b | None -> J.Null);
        ("quick", J.Bool quick);
        ("algos", J.List (List.map (fun a -> J.String a) algos));
        ("train", J.Bool train);
        ("raw", J.Bool raw);
        ("top", J.Int top);
        ("intervals", J.Int intervals);
        ("policy", J.String (Trg_cache.Policy.to_string policy));
        ("cost_engine", J.String (Trg_place.Cost.engine_name cost_engine));
      ]
    in
    let body () =
      match (program_f, layout_f, trace_f) with
      | Some pf, Some lf, Some tf ->
        if journal_out <> None then begin
          Log.err (fun m ->
              m
                "explain: --journal-out needs a prepared benchmark; it does \
                 not work in file-triple mode");
          exit 2
        end;
        let program = retrying (fun () -> Trg_program.Serial.load_program pf) in
        let layout = retrying (fun () -> Trg_program.Serial.load_layout program lf) in
        let trace = retrying (fun () -> Trg_trace.Io.load tf) in
        (* No prepared profile in file mode: build TRG_select from the
           given trace so the report still shows temporal-ordering
           weights next to each conflicting pair. *)
        let built =
          Trg_profile.Trg.build_select
            ~capacity_bytes:(2 * cache.Trg_cache.Config.size) program trace
        in
        ( Trg_eval.Explain.make ~intervals ~policy
            ~source:(Printf.sprintf "%s + %s" (Filename.basename pf) (Filename.basename lf))
            ~trace_label:(Filename.basename tf) ~cache
            ~trg_weight:(Trg_profile.Graph.weight built.Trg_profile.Trg.graph)
            ~program ~trace ~raw
            [ (Filename.basename lf, layout) ],
          None )
      | None, None, None ->
        let name =
          match (bench, quick) with
          | Some b, _ -> b
          | None, true -> "small"
          | None, false -> "small"
        in
        let shape = shapes_of_names [ name ] |> List.hd in
        let gconfig = Trg_place.Gbsc.default_config ~cache () in
        let r = Trg_eval.Runner.prepare ~config:gconfig ~policy shape in
        let algos =
          match algos with [] -> Trg_eval.Explain.default_algos | l -> l
        in
        (* Arm before the diagnosis so the journalled algorithm's own
           placement (if diagnosed) is the one captured; otherwise run
           it once more, explicitly, after the report is built. *)
        if journal_out <> None then Journal.arm ~algo:journal_algo ~source:name;
        let e = Trg_eval.Explain.of_runner ~intervals ~use_train:train ~raw ~algos r in
        let journal =
          match journal_out with
          | None -> None
          | Some path ->
            let j =
              match Journal.take () with
              | Some j -> j
              | None -> fst (Trg_eval.Replay.record ~algo:journal_algo r)
            in
            Some (path, j, save_journal path j)
        in
        (e, journal)
      | _ ->
        Log.err (fun m ->
            m "explain: give all of --program/--layout/--trace, or none");
        exit 2
    in
    (* Every failure mode of loading or simulating must still leave a
       Failed-status manifest, so each known exception family is mapped
       to the same exit path rather than escaping as a backtrace. *)
    let failed msg =
      Log.err (fun m -> m "%s" msg);
      finish_run ~command:"explain" ~config metrics_out Trg_obs.Manifest.Failed 1
    in
    match Trg_obs.Span.with_ "explain" body with
    | e, jopt ->
      Trg_eval.Explain.print ~top e;
      (match json_out with
      | None -> ()
      | Some path ->
        Trg_obs.Manifest.write path (Trg_eval.Explain.to_json ~top e);
        Printf.printf "\nwrote JSON report %s\n" path);
      (match jopt with
      | None -> ()
      | Some (path, j, _) ->
        Printf.printf "\nwrote decision journal %s (%d steps)\n" path
          (Array.length j.Journal.decisions));
      finish_run ~command:"explain" ~config
        ~explain:(Trg_eval.Explain.summary_json e)
        ?journal:(Option.map (fun (_, _, member) -> member) jopt)
        metrics_out Trg_obs.Manifest.Ok 0
    | exception Failure msg -> failed msg
    | exception Invalid_argument msg -> failed msg
    | exception Sys_error msg -> failed msg
    | exception Trg_util.Fault.Error e -> failed (Trg_util.Fault.to_string e)
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ verbose_term $ bench $ quick $ algos $ train $ raw $ top
      $ intervals $ json_out $ program_f $ layout_f $ trace_f $ cache_term
      $ policy_term $ cost_engine_term $ metrics_term $ journal_out_term
      $ journal_algo_term)

let compare_cmd =
  let doc =
    "Diff the deterministic metrics (counters, gauges, histogram totals) of \
     two run manifests; exit 1 when any metric drifts beyond the tolerance.  \
     Wall-clock spans and GC statistics are never compared, so machine noise \
     passes and counter drift fails."
  in
  let file_a =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline manifest.")
  in
  let file_b =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Manifest to check against the baseline.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.
      & info [ "tolerance" ] ~docv:"REL"
          ~doc:"Allowed relative drift per metric (e.g. 0.02 for 2%).")
  in
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"PREFIX"
          ~doc:
            "Restrict the comparison to metrics under $(docv) (repeatable). \
             A prefix matches the full metric name (e.g. counters/sim/) or \
             the name after its kind segment (e.g. sim/).  Use to compare \
             the layout-deterministic surface between runs whose \
             work-counter profiles legitimately differ, such as \
             $(b,--cost-engine full) vs $(b,incr).")
  in
  let run file_a file_b tolerance only =
    let load_validated file =
      let fail msg =
        Log.err (fun m -> m "%s: %s" file msg);
        exit 2
      in
      let json =
        match Trg_obs.Manifest.load file with Ok j -> j | Error msg -> fail msg
      in
      (match Trg_obs.Manifest.validate json with
      | Ok () -> ()
      | Error msg -> fail msg);
      json
    in
    let base = load_validated file_a and current = load_validated file_b in
    let selected (d : Trg_obs.Manifest.drift) =
      only = []
      ||
      let name = d.Trg_obs.Manifest.metric in
      (* Metric names look like "counters/sim/misses"; accept a prefix of
         the full name or of the part after the kind segment. *)
      let tail =
        match String.index_opt name '/' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      List.exists
        (fun p -> String.starts_with ~prefix:p name || String.starts_with ~prefix:p tail)
        only
    in
    match List.filter selected (Trg_obs.Manifest.diff ~tolerance base current) with
    | [] ->
      Printf.printf "manifests agree: no metric drift beyond %.4f (%s vs %s)\n"
        tolerance file_a file_b
    | drifts ->
      let module Table = Trg_util.Table in
      Printf.printf "%d metric(s) drifted beyond %.4f:\n\n" (List.length drifts)
        tolerance;
      Table.print
        ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
        ~header:[ "metric"; "baseline"; "current"; "rel" ]
        (List.map
           (fun d ->
             let cell = function
               | Some v -> Table.fmt_float v
               | None -> "(absent)"
             in
             [
               d.Trg_obs.Manifest.metric;
               cell d.Trg_obs.Manifest.base;
               cell d.Trg_obs.Manifest.current;
               (if Float.is_integer d.Trg_obs.Manifest.rel || d.Trg_obs.Manifest.rel < infinity
                then Table.fmt_pct d.Trg_obs.Manifest.rel
                else "new/gone");
             ])
           drifts);
      exit 1
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ file_a $ file_b $ tolerance $ only)

let stats_cmd =
  let doc =
    "Validate a telemetry run manifest (from $(b,--metrics-out)) and \
     pretty-print it as ASCII tables, a machine-readable JSON summary \
     ($(b,--json)), or a Chrome trace ($(b,--chrome-trace))."
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MANIFEST" ~doc:"Manifest file to render.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print a machine-readable summary (schema, status, counters, \
             gauges, histogram totals, span tallies) as one JSON object on \
             stdout instead of tables.")
  in
  let chrome_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Export the manifest's spans as Chrome trace-event JSON to \
             $(docv) (loadable in chrome://tracing or Perfetto).")
  in
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"PREFIX"
          ~doc:
            "Show only metrics under $(docv) (repeatable).  A prefix \
             matches the full metric name (e.g. counters/sim/) or the name \
             after its kind segment (e.g. sim/) — the same semantics as \
             $(b,trgplace compare --only).  Applies to counters, gauges \
             and histograms, in both table and $(b,--json) output.")
  in
  let run render_tables file json_flag chrome_out only =
    (* Same prefix semantics as [compare --only]: the full "kind/name"
       or just the name after the kind segment. *)
    let metric_selected kind name =
      only = []
      || List.exists
           (fun p ->
             String.starts_with ~prefix:p (kind ^ "/" ^ name)
             || String.starts_with ~prefix:p name)
           only
    in
    let fail msg =
      Log.err (fun m -> m "%s: %s" file msg);
      exit 1
    in
    let json =
      match Trg_obs.Manifest.load file with Ok j -> j | Error msg -> fail msg
    in
    (match Trg_obs.Manifest.validate json with
    | Ok () -> ()
    | Error msg -> fail msg);
    (match chrome_out with
    | None -> ()
    | Some path ->
      let spans =
        match Option.bind (J.member "spans" json) J.to_list with
        | Some l -> l
        | None -> []
      in
      Trg_obs.Manifest.write path (Trg_obs.Span.chrome_of_spans spans);
      if not json_flag then
        Printf.printf "wrote Chrome trace %s (%d spans)\n" path
          (List.length spans));
    if json_flag then (
      let member_or k d = match J.member k json with Some v -> v | None -> d in
      let filtered kind k =
        match J.member k json with
        | Some (J.Obj fields) ->
          J.Obj (List.filter (fun (name, _) -> metric_selected kind name) fields)
        | _ -> J.Obj []
      in
      let histogram_totals =
        match filtered "histograms" "histograms" with
        | J.Obj fields ->
          J.Obj
            (List.map
               (fun (k, v) ->
                 ( k,
                   match Option.bind (J.member "total" v) J.to_float with
                   | Some x -> J.Float x
                   | None -> J.Null ))
               fields)
        | _ -> J.Obj []
      in
      let span_count =
        match Option.bind (J.member "spans" json) J.to_list with
        | Some l -> List.length l
        | None -> 0
      in
      let summary =
        J.Obj
          ([
             ("schema", member_or "schema" J.Null);
             ("command", member_or "command" J.Null);
             ("status", member_or "status" J.Null);
             ("exit_code", member_or "exit_code" J.Null);
             ("counters", filtered "counters" "counters");
             ("gauges", filtered "gauges" "gauges");
             ("histogram_totals", histogram_totals);
             ("span_count", J.Int span_count);
           ]
          @
          match J.member "explain" json with
          | Some e -> [ ("explain", e) ]
          | None -> [])
      in
      print_endline (J.to_string ~indent:2 summary))
    else render_tables metric_selected json
  in
  let render_tables metric_selected json =
    let module Table = Trg_util.Table in
    let str k =
      match J.member k json with Some (J.String s) -> s | _ -> "?"
    in
    let obj_fields k =
      match J.member k json with Some (J.Obj fields) -> fields | _ -> []
    in
    let metric_fields k =
      List.filter (fun (name, _) -> metric_selected k name) (obj_fields k)
    in
    let left2 = [ Table.Left; Table.Left ] in
    Table.section (Printf.sprintf "RUN MANIFEST — %s (%s)" (str "command") (str "status"));
    let argv =
      match J.member "argv" json with
      | Some (J.List l) -> String.concat " " (List.filter_map J.to_string_opt l)
      | _ -> ""
    in
    let exit_code =
      match Option.bind (J.member "exit_code" json) J.to_int with
      | Some n -> string_of_int n
      | None -> "?"
    in
    Table.print ~align:left2 ~header:[ "run"; "value" ]
      [
        [ "schema"; str "schema" ];
        [ "status"; str "status" ];
        [ "exit code"; exit_code ];
        [ "argv"; argv ];
      ];
    (match obj_fields "config" with
    | [] -> ()
    | fields ->
      print_newline ();
      Table.print ~align:left2 ~header:[ "option"; "value" ]
        (List.map (fun (k, v) -> [ k; J.to_string v ]) fields));
    (match obj_fields "gc" with
    | [] -> ()
    | fields ->
      print_newline ();
      Table.print ~header:[ "gc"; "value" ]
        (List.map
           (fun (k, v) ->
             let rendered =
               match J.to_float v with
               | Some x -> Table.fmt_int (int_of_float x)
               | None -> J.to_string v
             in
             [ k; rendered ])
           fields));
    (match metric_fields "counters" with
    | [] -> ()
    | fields ->
      print_newline ();
      Table.print ~header:[ "counter"; "value" ]
        (List.map
           (fun (k, v) ->
             [ k; (match J.to_int v with Some n -> Table.fmt_int n | None -> "?") ])
           fields));
    (match metric_fields "gauges" with
    | [] -> ()
    | fields ->
      print_newline ();
      Table.print ~header:[ "gauge"; "value" ]
        (List.map
           (fun (k, v) ->
             [ k; (match J.to_float v with Some x -> Table.fmt_float x | None -> "?") ])
           fields));
    (match metric_fields "histograms" with
    | [] -> ()
    | fields ->
      print_newline ();
      Table.print ~align:left2 ~header:[ "histogram"; "total"; "bucket counts" ]
        (List.map
           (fun (k, v) ->
             let total =
               match Option.bind (J.member "total" v) J.to_int with
               | Some n -> Table.fmt_int n
               | None -> "?"
             in
             let counts =
               match Option.bind (J.member "counts" v) J.to_list with
               | Some l ->
                 String.concat " "
                   (List.map
                      (fun c ->
                        match J.to_int c with Some n -> string_of_int n | None -> "?")
                      l)
               | None -> "?"
             in
             [ k; total; counts ])
           fields));
    (match Option.bind (J.member "spans" json) J.to_list with
    | None | Some [] -> ()
    | Some spans ->
      print_newline ();
      Table.print
        ~align:[ Table.Left; Table.Right; Table.Right; Table.Left ]
        ~header:[ "span"; "wall ms"; "alloc words"; "outcome" ]
        (List.map
           (fun s ->
             let field k = J.member k s in
             let name =
               match Option.bind (field "name") J.to_string_opt with
               | Some n -> n
               | None -> "?"
             in
             let depth =
               match Option.bind (field "depth") J.to_int with Some d -> d | None -> 0
             in
             let wall =
               match Option.bind (field "wall_s") J.to_float with
               | Some w -> Table.fmt_float ~decimals:3 (1000. *. w)
               | None -> "?"
             in
             let alloc =
               match Option.bind (field "alloc_words") J.to_float with
               | Some a -> Table.fmt_int (int_of_float a)
               | None -> "?"
             in
             let outcome =
               match Option.bind (field "outcome") J.to_string_opt with
               | Some o -> o
               | None -> "?"
             in
             [ String.make (2 * depth) ' ' ^ name; wall; alloc; outcome ])
           spans))
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const (run render_tables) $ file $ json_flag $ chrome_out $ only)

let replay_cmd =
  let doc =
    "Re-drive a recorded merge-decision journal (from $(b,--journal-out)) \
     through the placement search in forced-choice mode and verify every \
     claim bit-exactly: each step's pair, weight, runner-up and margin, \
     GBSC's offsets and conflict costs, the summed decision weight and \
     the final layout's CRC-32.  Offsets and costs are recomputed with \
     the $(b,--cost-engine) in force, so replaying one journal under \
     $(b,full) and $(b,incr) is also a differential witness that the two \
     engines agree decision-by-decision.  Exit 0 when every claim \
     verifies, 1 on any mismatch, 2 when the journal cannot be loaded."
  in
  let journal_f =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL" ~doc:"Journal file to verify.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the verification report as one JSON object.")
  in
  let run verbose journal_f json_flag cost_engine =
    setup_logs verbose;
    Trg_place.Cost.set_engine cost_engine;
    let j =
      match Journal.load_result journal_f with
      | Ok j -> j
      | Error e ->
        Log.err (fun m -> m "%s: %s" journal_f (Trg_util.Fault.to_string e));
        exit 2
    in
    let report =
      match Trg_eval.Replay.verify j with
      | r -> r
      | exception Failure msg ->
        (* Not a mismatch: the journal refers to something this build
           cannot reconstruct (unknown benchmark or algorithm). *)
        Log.err (fun m -> m "replay: %s" msg);
        exit 2
    in
    if json_flag then
      print_endline (J.to_string ~indent:2 (Trg_eval.Replay.report_json report))
    else begin
      Printf.printf "replay %s: %s on %s, %d steps, engine %s (recorded %s)\n"
        journal_f j.Journal.meta.Journal.algo j.Journal.meta.Journal.source
        (Array.length j.Journal.decisions)
        report.Trg_eval.Replay.r_engine j.Journal.meta.Journal.engine;
      match report.Trg_eval.Replay.r_mismatches with
      | [] ->
        Printf.printf
          "verified bit-identical: layout CRC %08x, total decision weight %g\n"
          j.Journal.claims.Journal.layout_crc
          j.Journal.claims.Journal.total_weight
      | ms -> List.iter (fun msg -> Log.err (fun m -> m "replay: %s" msg)) ms
    end;
    if not (Trg_eval.Replay.ok report) then exit 1
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ verbose_term $ journal_f $ json_flag $ cost_engine_term)

let why_cmd =
  let doc =
    "Answer \"why is this procedure placed next to that one?\" from a \
     merge-decision journal: the step at which the two procedures' groups \
     were joined, the winning edge weight, the runner-up candidate it \
     beat and by what margin, the chosen cache-set offset — joined \
     against the TRG edge weight and the conflict matrix of the final \
     layout (what the decision cost in conflict misses).  With one \
     procedure, shows its group's full merge history."
  in
  let bench =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark the placement runs on.")
  in
  let proc1 =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"PROC" ~doc:"Procedure name or id.")
  in
  let proc2 =
    Arg.(
      value
      & pos 2 (some string) None
      & info [] ~docv:"PROC2"
          ~doc:"Second procedure: ask when and why it joined $(i,PROC)'s group.")
  in
  let algo =
    let doc = "Placement algorithm to interrogate." in
    Arg.(
      value
      & opt (enum [ ("gbsc", "gbsc"); ("ph", "ph"); ("hkc", "hkc"); ("gbsc-sa", "gbsc-sa") ]) "gbsc"
      & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)
  in
  let journal_f =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Use a previously recorded journal instead of recording one \
             now.  Its source benchmark must be $(i,BENCH); its algorithm \
             overrides $(b,--algo).")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the answer as one JSON object.")
  in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"Conflict rows to show.")
  in
  let run verbose bench proc1 proc2 algo journal_f json_flag top cache
      cost_engine =
    setup_logs verbose;
    Trg_place.Cost.set_engine cost_engine;
    let shape = shapes_of_names [ bench ] |> List.hd in
    let body () =
      let j, runner, layout =
        match journal_f with
        | Some file ->
          let j =
            match Journal.load_result file with
            | Ok j -> j
            | Error e -> failwith (file ^ ": " ^ Trg_util.Fault.to_string e)
          in
          if j.Journal.meta.Journal.source <> bench then
            failwith
              (Printf.sprintf
                 "why: journal %s was recorded on %S, not %S" file
                 j.Journal.meta.Journal.source bench);
          let runner = Trg_eval.Replay.prepare_for j.Journal.meta in
          (* Forced-choice replay: cheap, and fails loudly if the journal
             does not match this build's profile. *)
          let layout =
            Trg_eval.Replay.layout_for ~decisions:j.Journal.decisions
              ~algo:j.Journal.meta.Journal.algo runner
          in
          (j, runner, layout)
        | None ->
          let gconfig = Trg_place.Gbsc.default_config ~cache () in
          let runner = Trg_eval.Runner.prepare ~config:gconfig shape in
          let j, layout = Trg_eval.Replay.record ~algo runner in
          (j, runner, layout)
      in
      let program = Trg_eval.Runner.program runner in
      let resolve s =
        match Trg_program.Program.find_by_name program s with
        | Some p -> p
        | None -> (
          match int_of_string_opt s with
          | Some p when p >= 0 && p < Trg_program.Program.n_procs program -> p
          | Some p ->
            failwith
              (Printf.sprintf "why: procedure id %d out of range (0..%d)" p
                 (Trg_program.Program.n_procs program - 1))
          | None -> failwith (Printf.sprintf "why: unknown procedure %S" s))
      in
      let p = resolve proc1 and q = Option.map resolve proc2 in
      (* The conflict matrix comes from the layout the journal actually
         produced, normalised the same way [explain] normalises. *)
      let cache = runner.Trg_eval.Runner.config.Trg_place.Gbsc.cache in
      let aligned =
        Trg_program.Layout.line_align
          ~line_size:cache.Trg_cache.Config.line_size
          ~n_sets:(Trg_cache.Config.n_sets cache) program layout
      in
      let attrib =
        Trg_cache.Attrib.simulate program aligned cache
          runner.Trg_eval.Runner.test
      in
      let trg_weight =
        Trg_profile.Graph.weight
          runner.Trg_eval.Runner.prof.Trg_place.Gbsc.select.Trg_profile.Trg
            .graph
      in
      Trg_eval.Why.analyze ~journal:j ~trg_weight ~attrib
        ~proc_name:(Trg_program.Program.name program) ~p ?q ()
    in
    match Trg_obs.Span.with_ "why" body with
    | w ->
      if json_flag then
        print_endline (J.to_string ~indent:2 (Trg_eval.Why.to_json ~top w))
      else Trg_eval.Why.print ~top w
    | exception Failure msg ->
      Log.err (fun m -> m "%s" msg);
      exit 1
  in
  Cmd.v (Cmd.info "why" ~doc)
    Term.(
      const run $ verbose_term $ bench $ proc1 $ proc2 $ algo $ journal_f
      $ json_flag $ top $ cache_term $ cost_engine_term)

let show_layout_cmd =
  let doc = "Show a layout's cache mapping (per-set occupants)." in
  let program_f =
    Arg.(required & opt (some string) None & info [ "program"; "p" ] ~docv:"FILE" ~doc:"Program file.")
  in
  let layout_f =
    Arg.(required & opt (some string) None & info [ "layout"; "l" ] ~docv:"FILE" ~doc:"Layout file.")
  in
  let trace_f =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace"; "t" ] ~docv:"FILE"
          ~doc:"Optional profile trace; when given, only popular procedures are shown.")
  in
  let run program_f layout_f trace_f cache =
    let program = retrying (fun () -> Trg_program.Serial.load_program program_f) in
    let layout =
      retrying (fun () -> Trg_program.Serial.load_layout program layout_f)
    in
    let only =
      match trace_f with
      | None -> None
      | Some path ->
        let trace = retrying (fun () -> Trg_trace.Io.load path) in
        let stats =
          Trg_trace.Tstats.compute ~n_procs:(Trg_program.Program.n_procs program) trace
        in
        let pop = Trg_profile.Popularity.select program stats in
        Some (Trg_profile.Popularity.keep pop)
    in
    print_string (Trg_place.View.cache_map ?only program cache layout);
    print_endline "occupancy:";
    print_string (Trg_place.View.occupancy_summary ?only program cache layout)
  in
  Cmd.v (Cmd.info "show-layout" ~doc)
    Term.(const run $ program_f $ layout_f $ trace_f $ cache_term)

let simtest_cmd =
  let doc =
    "Deterministic simulation testing of the evaluation pool: run seeded \
     fault schedules (worker crashes, torn and corrupted reply frames, \
     stuck workers, spurious wakeups, clock skew) against the in-process \
     simulator and check that every work unit completes or is attributed \
     to a typed fault, bit-for-bit reproducibly.  A reported seed replays \
     forever: $(b,trgplace simtest --seed N --schedules 1)."
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Base seed; schedule $(i,k) uses seed $(docv)+$(i,k).")
  in
  let schedules =
    Arg.(
      value & opt int 16
      & info [ "schedules" ] ~docv:"N" ~doc:"Number of random fault schedules to run.")
  in
  let units =
    Arg.(
      value & opt int 12
      & info [ "units" ] ~docv:"N" ~doc:"Work units per simulated batch.")
  in
  let jobs =
    Arg.(
      value & opt int 3
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Simulated workers.  Fixed (not CPU-detected) so a seed replays \
             identically on any machine.")
  in
  let retries =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~docv:"N"
          ~doc:"Pool retries for units lost to injected infrastructure faults.")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-unit deadline in virtual seconds; frees workers hit by a \
             Stuck fault.")
  in
  let run seed schedules units jobs retries timeout metrics_out =
    if metrics_out <> None then Trg_obs.Span.set_enabled true;
    let config =
      [
        ("seed", J.Int seed);
        ("schedules", J.Int schedules);
        ("units", J.Int units);
        ("jobs", J.Int jobs);
        ("retries", J.Int retries);
        ("timeout", J.Float timeout);
      ]
    in
    let finish = finish_run ~command:"simtest" ~config metrics_out in
    if schedules < 1 || units < 1 || jobs < 1 || retries < 0 || timeout <= 0. then begin
      Log.err (fun m -> m "simtest: all sizes must be positive (retries >= 0)");
      exit 2
    end;
    let module Metrics = Trg_obs.Metrics in
    let module Pool = Trg_eval.Pool in
    let module Sim = Trg_eval.Pool_sim in
    let module Table = Trg_util.Table in
    let unit_runs = Metrics.counter "simtest/unit_runs" in
    let tasks =
      List.init units (fun i ->
          {
            Pool.key = Printf.sprintf "unit%d" i;
            work =
              (fun () ->
                Metrics.incr unit_runs;
                (i * 0x9E3779B1) land 0xFFFFFF);
          })
    in
    let violations = ref [] in
    let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
    let cnt (d : Metrics.snapshot) name =
      Option.value (List.assoc_opt name d.Metrics.snap_counters) ~default:0
    in
    let body () =
      Table.section "SIMTEST — seeded fault schedules against the pool simulator";
      let rows =
        List.init schedules (fun k ->
            let s = seed + k in
            let sched = Sim.random_schedule ~seed:s ~units in
            let go () =
              Sim.run ~jobs ~timeout ~retries ~schedule:sched ~seed:s tasks
            in
            let before = Metrics.snapshot () in
            let r1 = go () in
            let mid = Metrics.snapshot () in
            let r2 = go () in
            let after = Metrics.snapshot () in
            let d1 = Metrics.delta ~before ~after:mid in
            let d2 = Metrics.delta ~before:mid ~after in
            if List.length r1 <> units then
              violate "seed %d: %d of %d units reported" s (List.length r1) units;
            let same_outcomes =
              List.length r1 = List.length r2
              && List.for_all2
                   (fun (a : int Pool.outcome) (b : int Pool.outcome) ->
                     a.key = b.key && a.value = b.value && a.output = b.output)
                   r1 r2
            in
            if not same_outcomes then
              violate "seed %d: outcomes differ between identical runs" s;
            if d1.Metrics.snap_counters <> d2.Metrics.snap_counters then
              violate "seed %d: counter deltas differ between identical runs" s;
            if d1.Metrics.snap_histograms <> d2.Metrics.snap_histograms then
              violate "seed %d: histogram deltas differ between identical runs" s;
            let ok =
              List.length
                (List.filter (fun (o : int Pool.outcome) -> Result.is_ok o.value) r1)
            in
            let injected =
              cnt d1 "pool/sim/injected_crashes"
              + cnt d1 "pool/sim/injected_torn_writes"
              + cnt d1 "pool/sim/injected_corruptions"
              + cnt d1 "pool/sim/injected_stucks"
            in
            [
              string_of_int s;
              string_of_int injected;
              string_of_int (cnt d1 "pool/respawns");
              string_of_int (cnt d1 "pool/retries");
              Printf.sprintf "%d/%d" ok units;
              (if same_outcomes then "yes" else "NO");
            ])
      in
      Table.print
        ~header:[ "seed"; "faults"; "respawns"; "retries"; "ok"; "deterministic" ]
        rows
    in
    match Trg_obs.Span.with_ "simtest" body with
    | () -> (
      match !violations with
      | [] ->
        Printf.printf "simtest: %d schedules, no violations\n" schedules;
        finish Trg_obs.Manifest.Ok 0
      | vs ->
        List.iter (fun v -> Log.err (fun m -> m "%s" v)) (List.rev vs);
        finish Trg_obs.Manifest.Failed 1)
    | exception Failure msg ->
      (* A simulated deadlock lands here: the engine hung where production
         would hang.  That is exactly the bug class this command exists to
         catch, so it is a failure, not an error in the harness. *)
      Log.err (fun m -> m "simtest: %s" msg);
      finish Trg_obs.Manifest.Failed 1
  in
  Cmd.v
    (Cmd.info "simtest" ~doc)
    Term.(
      const run $ seed $ schedules $ units $ jobs $ retries $ timeout $ metrics_term)

(* --- perf: the continuous performance ledger -------------------------- *)

module Perf = Trg_obs.Perf
module Perfrun = Trg_eval.Perfrun

(* The revision a measurement belongs to: an explicit override (CI sets
   it so shallow checkouts don't matter), else git, else "unknown" —
   never a hard failure, a ledger outside a checkout is still useful. *)
let git_rev () =
  match Sys.getenv_opt "TRGPLACE_GIT_REV" with
  | Some r when String.trim r <> "" -> String.trim r
  | Some _ | None -> (
    match
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      (Unix.close_process_in ic, line)
    with
    | Unix.WEXITED 0, line when line <> "" -> line
    | _ -> "unknown"
    | exception (Unix.Unix_error _ | Sys_error _) -> "unknown")

let ledger_term =
  let doc =
    "Perf ledger file: append-only JSONL, one CRC-guarded record per \
     line.  Damaged lines are skipped with a warning, never fatal."
  in
  Arg.(
    value
    & opt string "BENCH_history.jsonl"
    & info [ "ledger" ] ~docv:"FILE" ~doc)

let perf_reps_term =
  let doc = "Repetitions per unit behind each median/MAD." in
  Arg.(value & opt int 5 & info [ "reps" ] ~docv:"N" ~doc)

let perf_bench_term =
  let doc =
    "Benchmarks to measure (repeatable).  Default: the small workload."
  in
  Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let perf_jobs_term =
  let doc =
    "Workers for the pool round-trip unit.  Fixed at 2 by default (not \
     CPU-detected) so recorded counters and timings are comparable \
     across machines."
  in
  Arg.(value & opt int 2 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let load_ledger path =
  match Perf.load_result path with
  | Error e ->
    Log.err (fun m -> m "%s: %s" path (Trg_util.Fault.to_string e));
    exit 2
  | Ok (records, skipped) ->
    List.iter
      (fun { Perf.line; fault } ->
        Log.warn (fun m ->
            m "%s:%d: skipping damaged ledger line (%s)" path line
              (Trg_util.Fault.to_string fault)))
      skipped;
    records

let perf_measure ~reps ~jobs ~benches ~policy =
  let benches = match benches with [] -> Perfrun.default_benches | l -> l in
  if reps < 1 || jobs < 1 then begin
    Log.err (fun m -> m "perf: --reps and --jobs must be positive");
    exit 2
  end;
  List.iter (fun n -> ignore (shapes_of_names [ n ])) benches;
  Perfrun.measure ~reps ~jobs ~benches ~policy ~rev:(git_rev ())
    ~time_s:(Trg_util.Clock.wall ()) ()

let print_record_table (r : Perf.record) =
  let module Table = Trg_util.Table in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "unit"; "wall median"; "wall MAD"; "alloc median" ]
    (List.map
       (fun (b : Perf.bench) ->
         [
           b.Perf.b_name;
           Printf.sprintf "%.3f ms" (1e3 *. b.Perf.wall_s.Perf.median);
           Printf.sprintf "%.3f ms" (1e3 *. b.Perf.wall_s.Perf.mad);
           Table.fmt_int (int_of_float b.Perf.alloc_w.Perf.median);
         ])
       r.Perf.benches)

let perf_record_cmd =
  let doc =
    "Measure the perf suite on this tree and append one record (median + \
     MAD over N repetitions of wall/alloc per unit, plus the \
     deterministic work counters) to the ledger."
  in
  let run verbose ledger reps benches jobs policy =
    setup_logs verbose;
    let r = perf_measure ~reps ~jobs ~benches ~policy in
    (match Trg_util.Fault.result (fun () -> Perf.append ledger r) with
    | Ok () -> ()
    | Error e ->
      Log.err (fun m -> m "%s: %s" ledger (Trg_util.Fault.to_string e));
      exit 1);
    Trg_util.Table.section
      (Printf.sprintf "PERF RECORD — rev %s, %d reps, policy %s" r.Perf.rev
         r.Perf.reps
         (Trg_cache.Policy.to_string policy));
    print_record_table r;
    Printf.printf "\nappended to %s (%d units, %d counters)\n" ledger
      (List.length r.Perf.benches)
      (List.length r.Perf.counters)
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(
      const run $ verbose_term $ ledger_term $ perf_reps_term
      $ perf_bench_term $ perf_jobs_term $ policy_term)

(* Sparklines want bucket-count-shaped ints; medians are scaled into
   [1, 1000] against the series maximum so relative level survives. *)
let spark_of_series values =
  let max_v = List.fold_left Float.max 0. values in
  let scaled =
    List.map
      (fun v ->
        if max_v <= 0. then 0 else max 1 (int_of_float (1000. *. v /. max_v)))
      values
  in
  Trg_eval.Explain.sparkline (Array.of_list scaled)

let perf_report_cmd =
  let doc =
    "Render the ledger's performance trajectory: per unit, the latest \
     median wall time and a sparkline of its history (or the whole \
     ledger as JSON with $(b,--json))."
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the ledger as one JSON document instead of tables.")
  in
  let run verbose ledger json_flag policy =
    setup_logs verbose;
    let records = load_ledger ledger in
    if json_flag then
      print_endline
        (J.to_string ~indent:2
           (J.Obj
              [
                ("schema", J.String (Perf.schema ^ "-report"));
                ("ledger", J.String ledger);
                ("records", J.List (List.map Perf.record_json records));
              ]))
    else begin
      match records with
      | [] -> Printf.printf "ledger %s is empty\n" ledger
      | _ ->
        let module Table = Trg_util.Table in
        let last = List.nth records (List.length records - 1) in
        (* The active policy names the session configuration these
           records are comparable against (it feeds config_crc). *)
        Table.section
          (Printf.sprintf
             "PERF LEDGER — %s (%d records, latest rev %s, policy %s)"
             ledger (List.length records) last.Perf.rev
             (Trg_cache.Policy.to_string policy));
        let names =
          List.sort_uniq compare
            (List.concat_map
               (fun (r : Perf.record) ->
                 List.map (fun (b : Perf.bench) -> b.Perf.b_name)
                   r.Perf.benches)
               records)
        in
        Table.print
          ~align:
            [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
          ~header:[ "unit"; "runs"; "wall median"; "wall MAD"; "trend" ]
          (List.map
             (fun name ->
               let series =
                 List.filter_map
                   (fun (r : Perf.record) ->
                     List.find_opt
                       (fun (b : Perf.bench) -> b.Perf.b_name = name)
                       r.Perf.benches)
                   records
               in
               let latest = List.nth series (List.length series - 1) in
               [
                 name;
                 string_of_int (List.length series);
                 Printf.sprintf "%.3f ms"
                   (1e3 *. latest.Perf.wall_s.Perf.median);
                 Printf.sprintf "%.3f ms" (1e3 *. latest.Perf.wall_s.Perf.mad);
                 spark_of_series
                   (List.map
                      (fun (b : Perf.bench) -> b.Perf.wall_s.Perf.median)
                      series);
               ])
             names)
    end
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ verbose_term $ ledger_term $ json_flag $ policy_term)

let perf_diff_cmd =
  let doc =
    "Compare the ledger's last two records: per-unit wall-median change \
     and every deterministic counter that moved."
  in
  let run verbose ledger =
    setup_logs verbose;
    let records = load_ledger ledger in
    match List.rev records with
    | current :: previous :: _ ->
      let module Table = Trg_util.Table in
      Table.section
        (Printf.sprintf "PERF DIFF — %s (rev %s) vs %s (rev %s)"
           (Printf.sprintf "#%d" (List.length records))
           current.Perf.rev
           (Printf.sprintf "#%d" (List.length records - 1))
           previous.Perf.rev);
      Table.print
        ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
        ~header:[ "unit"; "previous"; "current"; "change" ]
        (List.filter_map
           (fun (b : Perf.bench) ->
             Option.map
               (fun (p : Perf.bench) ->
                 let prev = p.Perf.wall_s.Perf.median
                 and cur = b.Perf.wall_s.Perf.median in
                 [
                   b.Perf.b_name;
                   Printf.sprintf "%.3f ms" (1e3 *. prev);
                   Printf.sprintf "%.3f ms" (1e3 *. cur);
                   (if prev > 0. then
                      Printf.sprintf "%+.1f%%" (100. *. ((cur /. prev) -. 1.))
                    else "-");
                 ])
               (List.find_opt
                  (fun (p : Perf.bench) -> p.Perf.b_name = b.Perf.b_name)
                  previous.Perf.benches))
           current.Perf.benches);
      let moved =
        List.filter_map
          (fun (name, v) ->
            match List.assoc_opt name previous.Perf.counters with
            | Some p when p <> v -> Some [ name; string_of_int p; string_of_int v ]
            | Some _ -> None
            | None -> Some [ name; "(absent)"; string_of_int v ])
          current.Perf.counters
      in
      if moved <> [] then begin
        print_newline ();
        Table.print
          ~align:[ Table.Left; Table.Right; Table.Right ]
          ~header:[ "counter"; "previous"; "current" ]
          moved
      end
    | _ ->
      Log.err (fun m ->
          m "perf diff: ledger %s needs at least two records" ledger);
      exit 2
  in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run $ verbose_term $ ledger_term)

let perf_gate_cmd =
  let doc =
    "Measure this tree and compare it against the ledger's recent window \
     with noise-aware tolerance bands (baseline + x MAD for wall/alloc \
     medians, exact-by-default comparison for deterministic counters).  \
     Exits 1 naming the regressed unit and metric."
  in
  let window_term =
    Arg.(
      value & opt int 5
      & info [ "window" ] ~docv:"K"
          ~doc:"Ledger records forming the baseline window.")
  in
  let mad_factor_term =
    Arg.(
      value & opt float 6.
      & info [ "mad-factor" ] ~docv:"X"
          ~doc:"Band width in window MADs above the baseline median.")
  in
  let min_band_term =
    Arg.(
      value & opt float 0.25
      & info [ "min-band" ] ~docv:"REL"
          ~doc:
            "Relative band floor — keeps a near-zero-noise window from \
             flagging ordinary scheduler jitter.")
  in
  let counter_tol_term =
    Arg.(
      value & opt float 0.
      & info [ "counter-tolerance" ] ~docv:"REL"
          ~doc:"Allowed relative drift for deterministic counters.")
  in
  let run verbose ledger reps benches jobs policy window mad_factor min_band
      counter_tolerance =
    setup_logs verbose;
    if window < 1 then begin
      Log.err (fun m -> m "perf gate: --window must be positive");
      exit 2
    end;
    let history = load_ledger ledger in
    if history = [] then begin
      Log.err (fun m ->
          m "perf gate: ledger %s has no records to gate against" ledger);
      exit 2
    end;
    let current = perf_measure ~reps ~jobs ~benches ~policy in
    let verdicts =
      Perf.gate ~window ~mad_factor ~min_band ~counter_tolerance ~history
        current
    in
    let module Table = Trg_util.Table in
    Table.section
      (Printf.sprintf "PERF GATE — rev %s vs last %d of %s" current.Perf.rev
         (min window (List.length history))
         ledger);
    Table.print
      ~align:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Left ]
      ~header:[ "unit"; "metric"; "current"; "baseline"; "limit"; "ok" ]
      (List.map
         (fun (v : Perf.verdict) ->
           let fmt x =
             if v.Perf.v_metric = "wall_s" then
               Printf.sprintf "%.3f ms" (1e3 *. x)
             else Table.fmt_float x
           in
           [
             v.Perf.v_bench;
             v.Perf.v_metric;
             fmt v.Perf.v_current;
             fmt v.Perf.v_baseline;
             (if v.Perf.v_metric = "counter" then
                Printf.sprintf "±%.4f" v.Perf.v_limit
              else fmt v.Perf.v_limit);
             (if v.Perf.v_ok then "yes" else "NO");
           ])
         verdicts);
    match Perf.regressions verdicts with
    | [] ->
      Printf.printf "\nperf gate: %d checks, no regressions\n"
        (List.length verdicts)
    | bad ->
      List.iter
        (fun (v : Perf.verdict) ->
          Log.err (fun m ->
              m "perf gate: REGRESSION %s %s: current %g exceeds %s %g"
                v.Perf.v_bench v.Perf.v_metric v.Perf.v_current
                (if v.Perf.v_metric = "counter" then "baseline" else "limit")
                (if v.Perf.v_metric = "counter" then v.Perf.v_baseline
                 else v.Perf.v_limit)))
        bad;
      exit 1
  in
  Cmd.v (Cmd.info "gate" ~doc)
    Term.(
      const run $ verbose_term $ ledger_term $ perf_reps_term
      $ perf_bench_term $ perf_jobs_term $ policy_term $ window_term
      $ mad_factor_term $ min_band_term $ counter_tol_term)

let perf_cmd =
  let doc =
    "Continuous performance ledger: record benchmark sessions, render \
     their trajectory, and gate changes with noise-aware bands."
  in
  Cmd.group (Cmd.info "perf" ~doc)
    [ perf_record_cmd; perf_report_cmd; perf_diff_cmd; perf_gate_cmd ]

let cmds =
  [
    gen_cmd;
    place_cmd;
    simulate_cmd;
    export_dot_cmd;
    show_layout_cmd;
    verify_cmd;
    explain_cmd;
    replay_cmd;
    why_cmd;
    compare_cmd;
    stats_cmd;
    simtest_cmd;
    perf_cmd;
    experiment "table1" "Reproduce Table 1 (benchmark characteristics)."
      Trg_eval.Report.table1;
    experiment "characterize" "Reuse-distance workload characterisation."
      Trg_eval.Report.characterize;
    experiment "figure5" "Reproduce Figure 5 (miss-rate distributions)."
      Trg_eval.Report.figure5;
    experiment "figure6" "Reproduce Figure 6 (metric/miss correlation)."
      Trg_eval.Report.figure6;
    experiment "padding" "Reproduce the Section 5.1 padding example."
      Trg_eval.Report.padding;
    experiment "setassoc" "Reproduce the Section 6 set-associative extension."
      Trg_eval.Report.setassoc;
    experiment "ablation" "Ablate GBSC's design choices." Trg_eval.Report.ablation;
    experiment "splitting" "Procedure splitting combined with GBSC."
      Trg_eval.Report.splitting;
    experiment "paging" "Page-locality linearisation variant (Section 4.3)."
      Trg_eval.Report.paging;
    experiment "sampling" "Sampled-profile quality (Section 4.4 practicality)."
      Trg_eval.Report.sampling;
    experiment "blocks" "Intra-procedure basic-block reordering."
      Trg_eval.Report.blocks;
    experiment "online" "Online (streaming) vs offline profiling."
      Trg_eval.Report.online;
    experiment "headroom" "Greedy GBSC vs direct metric search (annealing)."
      Trg_eval.Report.headroom;
    experiment "hierarchy"
      "Multi-level cache hierarchies (L1/L2/L3, PLRU/QLRU) across named \
       CPU presets — the conclusion's outlook, head to head."
      Trg_eval.Report.hierarchy;
    experiment "sweep" "Cache-size sweep (Section 5.2 robustness note)."
      Trg_eval.Report.sweep;
    experiment "all" "Run every experiment in paper order." Trg_eval.Report.all;
    demo_cmd;
  ]

let () =
  let doc = "procedure placement using temporal ordering information (MICRO-30 reproduction)" in
  let info = Cmd.info "trgplace" ~version:"1.0.0" ~doc in
  (* [Failure] is the boundary for expected runtime errors (corrupt artifacts,
     strict-mode aborts): render it as a one-line message instead of letting
     cmdliner report an internal error.  Anything else is still a crash. *)
  exit
    (try Cmd.eval ~catch:false (Cmd.group info cmds)
     with Failure msg ->
       Log.err (fun m -> m "%s" msg);
       1)
